//! # avf-prune
//!
//! Pre-campaign injection-site pruning: a static masked-site classifier
//! that partitions the full `(structure, entry, bit, cycle)` injection
//! space into *provably-masked* strata and a *residual* stratum, so the
//! adaptive sampler spends trials only where a flip could possibly
//! matter.
//!
//! The classifier consumes the golden run's occupancy/deadness evidence
//! ([`avf_sim::PruneEvidence`], recorded by
//! [`avf_sim::golden_run_with_evidence`]) plus the machine geometry and
//! program text, and emits a compact [`PruneMap`]. Every pruned site
//! carries an auditable [`ProofTag`] naming the argument for why the
//! injection engine would classify it masked without running:
//!
//! | tag | argument | scope |
//! |-----|----------|-------|
//! | [`ProofTag::IdleEntry`] | entry index ≥ the window's max occupancy ⇒ vacant on every cycle of the window | ROB, IQ, LQ, SQ, DTLB |
//! | [`ProofTag::UnAcePadding`] | bit lies past the implemented width of a byte-padded opcode/tag field ⇒ masked for every entry state | ROB, IQ (replay model only) |
//! | [`ProofTag::NarrowAccess`] | data bit ≥ 32 in a program whose text has no quad-width memory op ⇒ un-ACE for every occupant | LQ, SQ (both models) |
//! | [`ProofTag::DeadValueResidency`] | register free or newest-definition superseded on every cycle of the window | RF |
//!
//! Soundness contract: for every site the map prunes, a real injection
//! at that site classifies `Masked` — `crates/prune/tests` cross-checks
//! this exhaustively against [`avf_sim::InjectionSim::probe_bit`] on
//! witness programs under both fault models, and campaigns offer a
//! `--prune audit` mode that injects into a deterministic sample of
//! pruned sites and hard-fails on any non-masked observation.
//!
//! ## The stratified estimator
//!
//! With residual fraction `w = R / N` (R residual sites of N total),
//! sampling uniformly over the residual space and measuring `p̂_R` with
//! Wilson interval `[lo, hi]` gives the overall AVF as `w·p̂_R` with
//! interval `[w·lo, w·hi]`: the pruned mass contributes exact zeros, so
//! the absolute half-width shrinks by `w` and the same precision target
//! needs provably fewer trials.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use avf_isa::wire::{WireError, WireReader, WireWriter};
use avf_isa::{AccessSize, Opcode, Program};
use avf_sim::{FaultModel, InjectionTarget, MachineConfig, PruneEvidence};

/// Whether (and how) a campaign prunes its injection space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PruneMode {
    /// Sample the full space uniformly (the pre-pruning behavior).
    #[default]
    Off,
    /// Build a [`PruneMap`] from the golden pass and sample only the
    /// residual stratum, crediting pruned mass analytically.
    On,
    /// Like `On`, plus a deterministic audit batch injecting into a
    /// sample of *pruned* sites; any non-masked observation hard-fails
    /// the campaign (a classifier bug must be loud, never a silently
    /// wrong AVF).
    Audit,
}

impl PruneMode {
    /// Short name used in reports and on the CLI.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PruneMode::Off => "off",
            PruneMode::On => "on",
            PruneMode::Audit => "audit",
        }
    }

    /// Parses a CLI spelling of the mode.
    #[must_use]
    pub fn parse(s: &str) -> Option<PruneMode> {
        match s {
            "off" => Some(PruneMode::Off),
            "on" => Some(PruneMode::On),
            "audit" => Some(PruneMode::Audit),
            _ => None,
        }
    }

    /// Whether this mode needs a [`PruneMap`] at all.
    #[must_use]
    pub fn enabled(self) -> bool {
        self != PruneMode::Off
    }
}

impl std::fmt::Display for PruneMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The auditable argument attached to every pruned stratum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProofTag {
    /// The entry index is at or past the window's maximum occupancy, so
    /// the flip lands on a vacant entry on every cycle of the window.
    IdleEntry,
    /// The bit lies past the implemented width of a byte-padded
    /// opcode/tag field — masked for every entry state under the replay
    /// model's field decode.
    UnAcePadding,
    /// The bit indexes the upper data half of an LQ/SQ entry in a
    /// program whose text contains no quad-width memory access, so no
    /// occupant's access ever makes those bits ACE.
    NarrowAccess,
    /// The physical register was free, or its newest definition already
    /// superseded, on every cycle of the window.
    DeadValueResidency,
}

impl ProofTag {
    /// Short name used in reports and audit errors.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ProofTag::IdleEntry => "idle-entry",
            ProofTag::UnAcePadding => "un-ace-padding",
            ProofTag::NarrowAccess => "narrow-access",
            ProofTag::DeadValueResidency => "dead-value",
        }
    }
}

impl std::fmt::Display for ProofTag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One target's share of the [`PruneMap`]: static per-bit masks plus
/// per-window occupancy/deadness strata, with the exact pruned and
/// total site masses they account for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TargetPrune {
    target: InjectionTarget,
    entries: u64,
    entry_bits: u32,
    /// Bits provably masked for every `(entry, cycle)` because they are
    /// padding past an implemented field width (`ceil(entry_bits / 64)`
    /// words; empty when no bit qualifies).
    padding_mask: Vec<u64>,
    /// Bits provably un-ACE for every occupant because the program
    /// performs no quad-width memory access (same layout).
    narrow_mask: Vec<u64>,
    /// Per-window maximum occupancy; empty when occupancy pruning does
    /// not apply to this target.
    occ_max: Vec<u64>,
    /// Per-window register-deadness bitmaps (RF only; empty otherwise).
    dead_windows: Vec<Vec<u64>>,
    /// Provably-masked site count over the sampled space.
    pruned: u64,
    /// Total site count `(cycles − 1) × entries × entry_bits`.
    total: u64,
}

impl TargetPrune {
    /// The injection target this stratification covers.
    #[must_use]
    pub fn target(&self) -> InjectionTarget {
        self.target
    }

    /// Provably-masked site count.
    #[must_use]
    pub fn pruned(&self) -> u64 {
        self.pruned
    }

    /// Total site count of the sampled space.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Residual fraction `w = (total − pruned) / total`; 1.0 when the
    /// space is empty or nothing was pruned.
    #[must_use]
    pub fn residual_fraction(&self) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        (self.total - self.pruned) as f64 / self.total as f64
    }

    fn mask_bit(mask: &[u64], bit: u32) -> bool {
        mask.get((bit / 64) as usize)
            .is_some_and(|w| (w >> (bit % 64)) & 1 == 1)
    }

    fn static_words(&self) -> usize {
        (self.entry_bits as usize).div_ceil(64)
    }

    /// Recomputes `pruned`/`total` from the strata — called after build
    /// and after decode, so the masses are always consistent with the
    /// masks and never trusted from the wire.
    fn finalize(&mut self, cycles: u64, window: u64) {
        let span = cycles.saturating_sub(1);
        let mut static_bits = 0u64;
        for i in 0..self.static_words() {
            let a = self.padding_mask.get(i).copied().unwrap_or(0);
            let b = self.narrow_mask.get(i).copied().unwrap_or(0);
            static_bits += u64::from((a | b).count_ones());
        }
        let live_bits = u64::from(self.entry_bits) - static_bits;
        self.total = span * self.entries * u64::from(self.entry_bits);
        let mut pruned = span * self.entries * static_bits;
        for w in 0..self.occ_max.len().max(self.dead_windows.len()) {
            let lo = (w as u64) * window + 1;
            if lo > span {
                break;
            }
            let hi = span.min((w as u64 + 1) * window);
            let n = hi - lo + 1;
            if let Some(&occ) = self.occ_max.get(w) {
                pruned += n * self.entries.saturating_sub(occ) * live_bits;
            }
            if let Some(dead) = self.dead_windows.get(w) {
                let dead_entries: u64 = dead.iter().map(|d| u64::from(d.count_ones())).sum();
                pruned += n * dead_entries.min(self.entries) * live_bits;
            }
        }
        self.pruned = pruned;
    }

    fn encode(&self, w: &mut WireWriter) {
        w.u8(self.target.wire_code());
        w.u64(self.entries);
        w.u32(self.entry_bits);
        for mask in [&self.padding_mask, &self.narrow_mask] {
            w.usize(mask.len());
            for word in mask {
                w.u64(*word);
            }
        }
        w.usize(self.occ_max.len());
        for occ in &self.occ_max {
            w.u64(*occ);
        }
        w.usize(self.dead_windows.len());
        for dead in &self.dead_windows {
            w.usize(dead.len());
            for word in dead {
                w.u64(*word);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<TargetPrune, WireError> {
        let code = r.u8()?;
        let target = InjectionTarget::from_wire_code(code).ok_or(WireError::BadTag(code))?;
        let entries = r.u64()?;
        let entry_bits = r.u32()?;
        let mut masks = [Vec::new(), Vec::new()];
        let words = (entry_bits as usize).div_ceil(64);
        for mask in &mut masks {
            let n = r.seq_len(8)?;
            if n != 0 && n != words {
                return Err(WireError::Invalid("prune mask does not match geometry"));
            }
            for _ in 0..n {
                mask.push(r.u64()?);
            }
        }
        let [padding_mask, narrow_mask] = masks;
        let n_occ = r.seq_len(8)?;
        let mut occ_max = Vec::with_capacity(n_occ);
        for _ in 0..n_occ {
            occ_max.push(r.u64()?);
        }
        let n_dead = r.seq_len(8)?;
        let mut dead_windows = Vec::with_capacity(n_dead);
        for _ in 0..n_dead {
            let n = r.seq_len(8)?;
            if n != (entries as usize).div_ceil(64) {
                return Err(WireError::Invalid("prune bitmap does not match geometry"));
            }
            let mut dead = Vec::with_capacity(n);
            for _ in 0..n {
                dead.push(r.u64()?);
            }
            dead_windows.push(dead);
        }
        Ok(TargetPrune {
            target,
            entries,
            entry_bits,
            padding_mask,
            narrow_mask,
            occ_max,
            dead_windows,
            pruned: 0,
            total: 0,
        })
    }
}

/// The pre-campaign stratification of the full injection space: one
/// [`TargetPrune`] per [`InjectionTarget`], in `ALL` order.
///
/// `PartialEq`/`Eq` are load-bearing for venue symmetry: the stratified
/// sampler is a pure function of `(seed, PruneMap)`, so local and
/// remote campaigns stay bit-identical exactly when their maps are
/// equal — which the distributed driver cross-checks per worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PruneMap {
    window: u64,
    cycles: u64,
    targets: Vec<TargetPrune>,
}

impl PruneMap {
    /// Builds the map from the golden pass evidence, the machine
    /// geometry, the program text, and the campaign's fault model.
    ///
    /// The fault model is baked in: the padding strata rely on the
    /// replay oracle's field decode (the trap model turns the same
    /// flips into detected errors), so they are only emitted under
    /// [`FaultModel::Replay`]. Occupancy, deadness, and narrow-access
    /// strata are model-independent.
    #[must_use]
    pub fn build(
        machine: &MachineConfig,
        program: &Program,
        fault_model: FaultModel,
        evidence: &PruneEvidence,
    ) -> PruneMap {
        let sizes = machine.structure_sizes();
        let tag_width = {
            let regs = machine.phys_regs.max(2);
            usize::BITS - (regs - 1).leading_zeros()
        };
        let opcode_width = usize::BITS - (Opcode::ALL.len() - 1).leading_zeros();
        let replay = fault_model == FaultModel::Replay;
        let has_quad = program
            .insts()
            .iter()
            .any(|i| i.op.access_size() == Some(AccessSize::Quad));
        let mut targets = Vec::with_capacity(InjectionTarget::ALL.len());
        for target in InjectionTarget::ALL {
            let entries = target.entries(machine);
            let entry_bits = target.entry_bits(&sizes);
            let mut t = TargetPrune {
                target,
                entries,
                entry_bits,
                padding_mask: Vec::new(),
                narrow_mask: Vec::new(),
                occ_max: Vec::new(),
                dead_windows: Vec::new(),
                pruned: 0,
                total: 0,
            };
            let words = t.static_words();
            match target {
                InjectionTarget::Rob => {
                    if replay && tag_width < 8 {
                        // Control half: dest-tag field occupies bits
                        // 64..72; bits past the implemented tag width
                        // decode as padding under replay for every
                        // entry state (vacant, wrong-path, NOP, live).
                        let mut mask = vec![0u64; words];
                        for bit in 64 + tag_width..72 {
                            mask[(bit / 64) as usize] |= 1 << (bit % 64);
                        }
                        t.padding_mask = mask;
                    }
                    t.occ_max = evidence.rob_max.clone();
                }
                InjectionTarget::Iq => {
                    if replay {
                        // Byte 0 is the opcode field, bytes 1..3 are
                        // operand/destination tags; each is padded to a
                        // byte past its implemented width.
                        let mut mask = vec![0u64; words];
                        for bit in opcode_width..8 {
                            mask[0] |= 1 << bit;
                        }
                        for byte in 1..4u32 {
                            for bit in byte * 8 + tag_width..(byte + 1) * 8 {
                                mask[0] |= 1 << bit;
                            }
                        }
                        if mask.iter().any(|&w| w != 0) {
                            t.padding_mask = mask;
                        }
                    }
                    t.occ_max = evidence.iq_max.clone();
                }
                InjectionTarget::Lq | InjectionTarget::Sq => {
                    if !has_quad {
                        // Data half bits past word width: no occupant's
                        // access ever makes them ACE, under either
                        // fault model.
                        let mut mask = vec![0u64; words];
                        for bit in 64 + 32..128u32 {
                            mask[(bit / 64) as usize] |= 1 << (bit % 64);
                        }
                        t.narrow_mask = mask;
                    }
                    t.occ_max = if target == InjectionTarget::Lq {
                        evidence.lq_max.clone()
                    } else {
                        evidence.sq_max.clone()
                    };
                }
                InjectionTarget::RegFile => {
                    t.dead_windows = evidence.rf_dead.clone();
                }
                InjectionTarget::Dtlb => {
                    t.occ_max = evidence.dtlb_max.clone();
                }
                // Cache lines are not prefix-indexed by residency, so
                // valid-line vacancy admits no per-window proof — the
                // caches stay fully residual (recorded in the ROADMAP
                // as the next fidelity frontier).
                InjectionTarget::Dl1 | InjectionTarget::L2 => {}
            }
            t.finalize(evidence.cycles, evidence.window);
            targets.push(t);
        }
        PruneMap {
            window: evidence.window,
            cycles: evidence.cycles,
            targets,
        }
    }

    /// Cycle-window width of the occupancy/deadness strata.
    #[must_use]
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Golden-run cycle count; sampled cycles span `1..cycles`.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Per-target stratification, in [`InjectionTarget::ALL`] order.
    #[must_use]
    pub fn targets(&self) -> &[TargetPrune] {
        &self.targets
    }

    /// The target's stratification record.
    #[must_use]
    pub fn of(&self, target: InjectionTarget) -> &TargetPrune {
        &self.targets[usize::from(target.wire_code())]
    }

    /// Residual fraction of the target's site space.
    #[must_use]
    pub fn residual_fraction(&self, target: InjectionTarget) -> f64 {
        self.of(target).residual_fraction()
    }

    /// Classifies one site: `Some(tag)` when the site is provably
    /// masked (with the stratum's proof tag), `None` when it is
    /// residual and must be sampled.
    #[must_use]
    pub fn classify(
        &self,
        target: InjectionTarget,
        entry: u64,
        bit: u32,
        cycle: u64,
    ) -> Option<ProofTag> {
        let t = self.of(target);
        if TargetPrune::mask_bit(&t.padding_mask, bit) {
            return Some(ProofTag::UnAcePadding);
        }
        if TargetPrune::mask_bit(&t.narrow_mask, bit) {
            return Some(ProofTag::NarrowAccess);
        }
        if cycle == 0 || cycle >= self.cycles {
            return None;
        }
        let w = ((cycle - 1) / self.window) as usize;
        if let Some(&occ) = t.occ_max.get(w) {
            if entry >= occ {
                return Some(ProofTag::IdleEntry);
            }
        }
        if let Some(dead) = t.dead_windows.get(w) {
            if dead
                .get((entry / 64) as usize)
                .is_some_and(|word| (word >> (entry % 64)) & 1 == 1)
            {
                return Some(ProofTag::DeadValueResidency);
            }
        }
        None
    }

    /// Whether the site is provably masked.
    #[must_use]
    pub fn is_pruned(&self, target: InjectionTarget, entry: u64, bit: u32, cycle: u64) -> bool {
        self.classify(target, entry, bit, cycle).is_some()
    }

    /// Serializes the map into a wire writer (the masses are
    /// recomputed, never shipped).
    pub fn encode(&self, w: &mut WireWriter) {
        w.u64(self.window);
        w.u64(self.cycles);
        w.usize(self.targets.len());
        for t in &self.targets {
            t.encode(w);
        }
    }

    /// Decodes a map written by [`PruneMap::encode`], revalidating the
    /// per-target geometry and recomputing the stratum masses.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on truncation, an unknown target code,
    /// targets out of [`InjectionTarget::ALL`] order, or masks that do
    /// not match the declared geometry.
    pub fn decode(r: &mut WireReader<'_>) -> Result<PruneMap, WireError> {
        let window = r.u64()?;
        if window == 0 {
            return Err(WireError::Invalid("prune window must be positive"));
        }
        let cycles = r.u64()?;
        let n = r.seq_len(10)?;
        if n != InjectionTarget::ALL.len() {
            return Err(WireError::Invalid("prune map must cover every target"));
        }
        let mut targets = Vec::with_capacity(n);
        for expected in InjectionTarget::ALL {
            let mut t = TargetPrune::decode(r)?;
            if t.target != expected {
                return Err(WireError::Invalid("prune map targets out of order"));
            }
            t.finalize(cycles, window);
            targets.push(t);
        }
        Ok(PruneMap {
            window,
            cycles,
            targets,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avf_sim::{golden_run_with_evidence, PRUNE_WINDOW};

    fn build_for(model: FaultModel) -> (MachineConfig, PruneMap) {
        let machine = MachineConfig::baseline();
        let program = avf_workloads::testkit::idle_loop();
        let (_, _, ev) = golden_run_with_evidence(&machine, &program, 2_000, 256, PRUNE_WINDOW);
        let map = PruneMap::build(&machine, &program, model, &ev);
        (machine, map)
    }

    #[test]
    fn padding_strata_are_replay_only() {
        let (_, replay) = build_for(FaultModel::Replay);
        let (_, trap) = build_for(FaultModel::Trap);
        // ROB dest-tag padding bit (tag width 7 on an 80-register file).
        assert_eq!(
            replay.classify(InjectionTarget::Rob, 0, 71, 1),
            Some(ProofTag::UnAcePadding)
        );
        assert_ne!(
            trap.classify(InjectionTarget::Rob, 0, 71, 1),
            Some(ProofTag::UnAcePadding)
        );
        // IQ tag-byte padding bit.
        assert_eq!(
            replay.classify(InjectionTarget::Iq, 0, 15, 1),
            Some(ProofTag::UnAcePadding)
        );
    }

    #[test]
    fn narrow_access_requires_no_quad_ops() {
        let machine = MachineConfig::baseline();
        // register_chain stores with stq — quad access, no narrow stratum.
        let program = avf_workloads::testkit::register_chain();
        let (_, _, ev) = golden_run_with_evidence(&machine, &program, 2_000, 256, PRUNE_WINDOW);
        let map = PruneMap::build(&machine, &program, FaultModel::Replay, &ev);
        assert_ne!(
            map.classify(InjectionTarget::Lq, 0, 100, 1),
            Some(ProofTag::NarrowAccess)
        );
        // idle_loop has no memory ops at all: the whole upper data half
        // is a narrow-access stratum.
        let (_, map) = build_for(FaultModel::Replay);
        assert_eq!(
            map.classify(InjectionTarget::Sq, 0, 127, 1),
            Some(ProofTag::NarrowAccess)
        );
    }

    #[test]
    fn idle_entries_and_dead_registers_prune() {
        let (machine, map) = build_for(FaultModel::Replay);
        // The idle loop cannot fill the last ROB entry's worth of
        // occupancy at every cycle of every window; the top entry of an
        // 80-entry ROB is certainly idle somewhere.
        let last = InjectionTarget::Rob.entries(&machine) - 1;
        assert_eq!(
            map.classify(InjectionTarget::Rob, last, 0, 1),
            Some(ProofTag::IdleEntry)
        );
        let rf = map.of(InjectionTarget::RegFile);
        assert!(rf.pruned() > 0, "idle loop must have dead registers");
        assert!(rf.residual_fraction() < 1.0);
    }

    #[test]
    fn masses_are_exact_and_fractions_bounded() {
        let (_, map) = build_for(FaultModel::Replay);
        for t in map.targets() {
            assert!(t.pruned() <= t.total(), "{}", t.target());
            let w = t.residual_fraction();
            assert!((0.0..=1.0).contains(&w), "{}: {w}", t.target());
        }
        // Caches admit no proof: fully residual.
        assert_eq!(map.of(InjectionTarget::Dl1).pruned(), 0);
        assert_eq!(map.of(InjectionTarget::L2).pruned(), 0);
        assert!((map.residual_fraction(InjectionTarget::Dl1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn wire_round_trip_preserves_equality() {
        for model in [FaultModel::Trap, FaultModel::Replay] {
            let (_, map) = build_for(model);
            let mut w = WireWriter::new();
            map.encode(&mut w);
            let bytes = w.into_bytes();
            let mut r = WireReader::new(&bytes);
            let back = PruneMap::decode(&mut r).unwrap();
            r.finish().unwrap();
            assert_eq!(back, map);
            // Truncation fails typed, never panics.
            let mut r = WireReader::new(&bytes[..bytes.len() / 2]);
            assert!(PruneMap::decode(&mut r).is_err());
        }
    }

    #[test]
    fn classify_out_of_evidence_cycle_is_residual() {
        let (_, map) = build_for(FaultModel::Replay);
        assert_eq!(map.classify(InjectionTarget::Rob, 79, 0, 0), None);
        assert_eq!(
            map.classify(InjectionTarget::Rob, 79, 0, map.cycles() + 10),
            None
        );
    }
}
