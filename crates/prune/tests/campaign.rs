//! Campaign-level pruning properties: the stratified estimator must
//! reproduce the unpruned measurement (same seed, same precision
//! target) while spending strictly fewer trials, stay deterministic
//! across thread counts, and survive the audit mode that re-injects
//! into sites the classifier swore were masked.

use avf_inject::{Campaign, CampaignConfig, CampaignReport, PruneMode};
use avf_isa::Program;
use avf_sim::MachineConfig;
use avf_workloads::testkit::{idle_loop, register_chain};

fn adaptive_config(prune: PruneMode, threads: usize) -> CampaignConfig {
    CampaignConfig {
        injections: 4_000,
        seed: 11,
        threads,
        instr_budget: 6_000,
        ci_target: Some(0.15),
        batch_size: 64,
        prune,
        ..CampaignConfig::default()
    }
}

fn run(program: &Program, prune: PruneMode, threads: usize) -> CampaignReport {
    let machine = MachineConfig::baseline();
    Campaign::new(&machine, program, adaptive_config(prune, threads)).run()
}

/// The four equivalence witnesses: both testkit extremes plus two
/// validation workload profiles (one integer pointer-chaser, one
/// embedded kernel), so the savings claim is not an idle-loop artifact.
fn witness_programs() -> Vec<Program> {
    vec![
        idle_loop(),
        register_chain(),
        avf_workloads::by_name("429.mcf")
            .expect("mcf proxy")
            .build(),
        avf_workloads::by_name("susan")
            .expect("susan proxy")
            .build(),
    ]
}

#[test]
fn pruned_campaigns_match_unpruned_within_ci_and_spend_fewer_trials() {
    let mut cheaper = 0usize;
    let mut saved_total = 0u64;
    let programs = witness_programs();
    for program in &programs {
        let off = run(program, PruneMode::Off, 2);
        let on = run(program, PruneMode::On, 2);
        assert!(
            off.consistent(),
            "{}: unpruned run violated ACE",
            off.program
        );
        assert!(on.consistent(), "{}: pruned run violated ACE", on.program);
        for (a, b) in off.targets.iter().zip(&on.targets) {
            assert_eq!(a.target, b.target);
            // Stratified estimate vs plain estimate: two measurements
            // of the same quantity must agree within their combined
            // 95% precision.
            let gap = (a.measured_avf() - b.measured_avf()).abs();
            let tolerance = a.half_width95() + b.half_width95();
            assert!(
                gap <= tolerance + 1e-9,
                "{} {}: pruned {:.4} vs unpruned {:.4} differ by {gap:.4} > ±{tolerance:.4}",
                on.program,
                a.target,
                b.measured_avf(),
                a.measured_avf()
            );
        }
        // A target that converges with zero trials (its residual-scaled
        // half-width already meets the target) credits no `saved`
        // draws, so the per-trial credit is only meaningful summed over
        // programs that do spend trials on pruned targets.
        saved_total += on.trials_saved();
        if on.injections < off.injections {
            cheaper += 1;
        }
    }
    assert!(
        saved_total > 0,
        "the stratified estimator never credited a skipped draw"
    );
    assert!(
        cheaper >= 3,
        "pruning must reach the same CI target with strictly fewer injections \
         on at least 3 of {} programs (got {cheaper})",
        programs.len()
    );
}

#[test]
fn stratified_campaign_is_deterministic_across_thread_counts() {
    let program = register_chain();
    let reports: Vec<CampaignReport> = [1usize, 2, 4]
        .into_iter()
        .map(|threads| run(&program, PruneMode::On, threads))
        .collect();
    let one = &reports[0];
    for other in &reports[1..] {
        assert_eq!(one.injections, other.injections);
        assert_eq!(one.stop, other.stop);
        assert_eq!(one.batches.len(), other.batches.len());
        for (a, b) in one.targets.iter().zip(&other.targets) {
            assert_eq!(a.target, b.target);
            assert_eq!(a.counts, b.counts, "{}: thread counts differ", a.target);
            assert_eq!(
                a.residual.to_bits(),
                b.residual.to_bits(),
                "{}: residual mass must be venue-independent",
                a.target
            );
        }
        for (a, b) in one.batches.iter().zip(&other.batches) {
            assert_eq!(a.trials, b.trials);
            assert_eq!(a.widest, b.widest);
            assert_eq!(a.max_half_width.to_bits(), b.max_half_width.to_bits());
        }
    }
}

#[test]
fn audit_mode_reinjects_pruned_sites_and_observes_all_masked() {
    // Audit hard-fails the campaign on any non-masked pruned site, so
    // a clean return IS the soundness assertion; the count proves the
    // audit stream actually ran.
    let report = run(&idle_loop(), PruneMode::Audit, 2);
    assert!(report.audited > 0, "audit mode must execute audit trials");
    assert!(report.consistent());
    let text = report.to_string();
    assert!(
        text.contains("audit trial(s), all masked"),
        "report must surface the audit verdict: {text}"
    );
}

#[test]
fn report_appends_pruning_columns_after_the_verdict() {
    let pruned = run(&idle_loop(), PruneMode::On, 2);
    let plain = run(&idle_loop(), PruneMode::Off, 2);
    let pruned_text = pruned.to_string();
    let plain_text = plain.to_string();
    assert!(pruned_text.contains("pruned   saved"));
    assert!(!plain_text.contains("pruned   saved"));
    // CI scripts parse the first twelve whitespace-separated fields by
    // position; the pruning columns must extend rows, not reshape them.
    let mut rows = 0;
    for line in pruned_text.lines() {
        if line.starts_with("ROB ") {
            let fields: Vec<&str> = line.split_whitespace().collect();
            assert!(fields.len() >= 14, "ROB row carries pruned+saved: {line}");
            rows += 1;
        }
    }
    assert_eq!(rows, 1, "exactly one ROB row in the report");
}
