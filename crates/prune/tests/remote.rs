//! Venue symmetry under pruning: a stratified campaign over a real TCP
//! `serve` worker must be bit-identical to the in-process run — which
//! requires the prune map itself to survive the wire, since the
//! residual sampler is a pure function of `(seed, PruneMap)`.

use avf_inject::{Campaign, CampaignConfig, GoldenMode, LocalBackend, PruneMode};
use avf_service::{spawn_local, RemoteBackend, ServeOptions};
use avf_sim::MachineConfig;
use avf_workloads::testkit::register_chain;

fn pruned_config(golden_mode: GoldenMode) -> CampaignConfig {
    CampaignConfig {
        injections: 2_000,
        seed: 11,
        threads: 2,
        instr_budget: 6_000,
        ci_target: Some(0.16),
        batch_size: 64,
        prune: PruneMode::On,
        golden_mode,
        ..CampaignConfig::default()
    }
}

fn assert_identical(a: &avf_inject::CampaignReport, b: &avf_inject::CampaignReport) {
    assert_eq!(a.injections, b.injections);
    assert_eq!(a.stop, b.stop);
    assert_eq!(a.golden.digest, b.golden.digest);
    assert_eq!(a.batches.len(), b.batches.len());
    for (x, y) in a.targets.iter().zip(&b.targets) {
        assert_eq!(x.target, y.target);
        assert_eq!(x.counts, y.counts, "{}: outcome counts differ", x.target);
        assert_eq!(
            x.residual.to_bits(),
            y.residual.to_bits(),
            "{}: the wire-shipped map stratifies differently",
            x.target
        );
        assert_eq!(x.ci95().0.to_bits(), y.ci95().0.to_bits());
        assert_eq!(x.ci95().1.to_bits(), y.ci95().1.to_bits());
    }
    for (x, y) in a.batches.iter().zip(&b.batches) {
        assert_eq!(x.trials, y.trials);
        assert_eq!(x.widest, y.widest);
        assert_eq!(x.max_half_width.to_bits(), y.max_half_width.to_bits());
    }
}

#[test]
fn delegated_pruned_campaign_matches_local_with_the_map_shipped_back() {
    // Worker golden mode: the worker captures the evidence during its
    // own golden pass, builds the map, and returns it in JOB_READY —
    // the driver samples from a map that crossed the wire.
    let machine = MachineConfig::baseline();
    let program = register_chain();
    let config = pruned_config(GoldenMode::Worker);

    let local = Campaign::new(&machine, &program, config.clone())
        .run_on(&LocalBackend::new(2))
        .expect("local pruned run");
    assert!(local.trials_saved() > 0, "pruning engaged");

    let addr = spawn_local(ServeOptions {
        threads: 2,
        ..ServeOptions::default()
    })
    .expect("bind loopback server");
    let remote = Campaign::new(&machine, &program, config)
        .run_on(&RemoteBackend::new(vec![addr.to_string()]))
        .expect("remote pruned run");
    assert_identical(&local, &remote);
}

#[test]
fn driver_golden_pruned_campaign_matches_over_the_wire_too() {
    // Driver golden mode: the driver builds the map from its own
    // instrumented pass and ships only the store — the worker never
    // sees the map, trials arrive as explicit residual sites.
    let machine = MachineConfig::baseline();
    let program = register_chain();
    let config = pruned_config(GoldenMode::Driver);

    let local = Campaign::new(&machine, &program, config.clone())
        .run_on(&LocalBackend::new(1))
        .expect("local pruned run");

    let addr = spawn_local(ServeOptions {
        threads: 1,
        ..ServeOptions::default()
    })
    .expect("bind loopback server");
    let remote = Campaign::new(&machine, &program, config)
        .run_on(&RemoteBackend::new(vec![addr.to_string()]))
        .expect("remote pruned run");
    assert_identical(&local, &remote);
}
