//! Per-proof-tag soundness: every site the classifier prunes must
//! classify `Masked` when a real injection is executed there.
//!
//! The stratified estimator credits pruned strata as exact zeros
//! without running a single trial, so a classifier that prunes one
//! genuinely-vulnerable site silently deflates the measured AVF. These
//! sweeps enumerate pruned sites per [`ProofTag`] on witness programs
//! and execute each one through the real injection engine — under both
//! fault models, since the padding strata are replay-conditional.

use std::sync::Arc;

use avf_inject::{
    cycle_budget_of, CampaignBackend, GoldenSpec, JobSpec, LocalBackend, Outcome, Trial,
};
use avf_prune::{ProofTag, PruneMap};
use avf_sim::{golden_run_with_evidence, FaultModel, InjectionTarget, MachineConfig, PRUNE_WINDOW};
use avf_workloads::testkit::{idle_loop, register_chain};

const INSTR_BUDGET: u64 = 6_000;

/// Cap per (target, tag) bucket so the sweep covers every stratum kind
/// on every structure without ballooning the trial count.
const SITES_PER_BUCKET: usize = 12;

const TAGS: [ProofTag; 4] = [
    ProofTag::IdleEntry,
    ProofTag::UnAcePadding,
    ProofTag::NarrowAccess,
    ProofTag::DeadValueResidency,
];

fn tag_slot(tag: ProofTag) -> usize {
    TAGS.iter().position(|&t| t == tag).expect("known tag")
}

/// Enumerates pruned sites spread over cycles/entries/bits, bucketed by
/// `(target, proof tag)`, and returns them as a trial list plus the
/// proof tag each trial's site carries.
fn pruned_sweep(machine: &MachineConfig, map: &PruneMap) -> Vec<(Trial, ProofTag)> {
    let sizes = machine.structure_sizes();
    let cycles = map.cycles();
    let probe_cycles: Vec<u64> = [1, cycles / 4, cycles / 2, (3 * cycles) / 4, cycles - 1]
        .into_iter()
        .filter(|&c| c >= 1 && c < cycles)
        .collect();
    let mut sites = Vec::new();
    let mut index = 0u64;
    for target in InjectionTarget::ALL {
        let entries = target.entries(machine);
        let entry_bits = target.entry_bits(&sizes);
        let mut bucket = [0usize; TAGS.len()];
        for &cycle in &probe_cycles {
            for entry in (0..entries).step_by((entries as usize / 8).max(1)) {
                for bit in (0..entry_bits).step_by((entry_bits as usize / 16).max(1)) {
                    let Some(tag) = map.classify(target, entry, bit, cycle) else {
                        continue;
                    };
                    let slot = tag_slot(tag);
                    if bucket[slot] >= SITES_PER_BUCKET {
                        continue;
                    }
                    bucket[slot] += 1;
                    sites.push((
                        Trial {
                            index,
                            target,
                            cycle,
                            entry,
                            bit,
                        },
                        tag,
                    ));
                    index += 1;
                }
            }
        }
    }
    sites
}

/// Builds evidence + map for `(program, model)`, executes every swept
/// pruned site through the injection engine, and asserts each one
/// observes `Masked`. Returns which proof tags the sweep exercised.
fn assert_sweep_masked(program: &avf_isa::Program, model: FaultModel) -> [bool; TAGS.len()] {
    let machine = MachineConfig::baseline();
    let (golden, store, evidence) = golden_run_with_evidence(
        &machine,
        program,
        INSTR_BUDGET,
        golden_interval(),
        PRUNE_WINDOW,
    );
    let map = PruneMap::build(&machine, program, model, &evidence);
    let sites = pruned_sweep(&machine, &map);
    assert!(
        !sites.is_empty(),
        "witness program must yield pruned sites to audit"
    );

    let backend = LocalBackend::new(2);
    let opened = backend
        .open(JobSpec {
            machine: machine.clone(),
            program: program.clone(),
            instr_budget: INSTR_BUDGET,
            fault_model: model,
            golden: GoldenSpec::Shipped {
                store: Arc::new(store),
                decoded: None,
                golden,
                cycle_budget: cycle_budget_of(golden.cycles),
            },
            prune: false,
        })
        .expect("local backend opens a shipped store");
    let mut session = opened.session;
    let trials: Vec<Trial> = sites.iter().map(|&(t, _)| t).collect();
    let mut seen = 0usize;
    for event in session.submit(&trials).expect("submit sweep") {
        let event = event.expect("local trial");
        let (trial, tag) = sites[event.index as usize];
        assert_eq!(
            event.outcome,
            Outcome::Masked,
            "{model} model: pruned site {} cycle {} entry {} bit {} ({tag}) observed {:?}",
            trial.target,
            trial.cycle,
            trial.entry,
            trial.bit,
            event.outcome
        );
        seen += 1;
    }
    assert_eq!(seen, sites.len(), "every swept site must report back");

    let mut covered = [false; TAGS.len()];
    for &(_, tag) in &sites {
        covered[tag_slot(tag)] = true;
    }
    covered
}

fn golden_interval() -> u64 {
    (INSTR_BUDGET / 8).max(64)
}

#[test]
fn replay_sweep_on_idle_loop_covers_and_masks_all_four_strata() {
    let covered = assert_sweep_masked(&idle_loop(), FaultModel::Replay);
    // The idle loop is the maximal witness: no memory traffic (narrow
    // LQ/SQ data), almost-empty queues (idle entries), one live
    // register (dead-value residency), and the replay model adds the
    // padding strata.
    for (tag, hit) in TAGS.iter().zip(covered) {
        assert!(hit, "sweep never exercised the {tag} stratum");
    }
}

#[test]
fn trap_sweep_on_idle_loop_masks_without_padding_strata() {
    let covered = assert_sweep_masked(&idle_loop(), FaultModel::Trap);
    // Trap-model control flips are DUE by fiat, so the padding proof is
    // unsound there and the classifier must not emit it.
    assert!(!covered[tag_slot(ProofTag::UnAcePadding)]);
    assert!(covered[tag_slot(ProofTag::IdleEntry)]);
    assert!(covered[tag_slot(ProofTag::DeadValueResidency)]);
}

#[test]
fn sweeps_on_a_live_program_stay_sound_under_both_models() {
    for model in [FaultModel::Replay, FaultModel::Trap] {
        let covered = assert_sweep_masked(&register_chain(), model);
        // register_chain stores quad-width values: the narrow-access
        // stratum must never appear for it.
        assert!(
            !covered[tag_slot(ProofTag::NarrowAccess)],
            "{model}: quad-width program must not get narrow-access pruning"
        );
        assert!(covered[tag_slot(ProofTag::IdleEntry)]);
    }
}
