//! Property test of the generator's central guarantee: *every* feasible
//! knob setting yields a (steady-state) 100% ACE program — the requirement
//! that distinguishes an AVF stressmark from a power virus or random
//! verification stimulus (paper Section IV-B).

use avf_codegen::{dead_fraction, generate, Knobs, L2Mode, TargetParams, GENOME_LEN};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_genome_yields_an_ace_program(genes in proptest::collection::vec(0.0f64..1.0, GENOME_LEN)) {
        let params = TargetParams::baseline();
        let sm = generate(&Knobs::from_genome(&genes, &params), &params);
        let frac = dead_fraction(&sm.program, 20_000);
        prop_assert!(
            frac < 0.02,
            "knobs {:?} produced dead fraction {frac:.4}",
            sm.knobs
        );
    }

    #[test]
    fn emitted_mix_matches_knobs(genes in proptest::collection::vec(0.0f64..1.0, GENOME_LEN)) {
        let params = TargetParams::baseline();
        let sm = generate(&Knobs::from_genome(&genes, &params), &params);
        let loads = sm.program.insts().iter().filter(|i| i.op.is_load()).count() as u32;
        let stores = sm.program.insts().iter().filter(|i| i.op.is_store()).count() as u32;
        prop_assert_eq!(loads, sm.knobs.n_loads + 1, "chase + coverage + DTLB touch");
        prop_assert_eq!(stores, sm.knobs.n_stores);
        prop_assert_eq!(sm.derived.body_len, sm.knobs.loop_size);
    }

    #[test]
    fn repair_is_idempotent(genes in proptest::collection::vec(0.0f64..1.0, GENOME_LEN)) {
        let params = TargetParams::baseline();
        let k1 = Knobs::from_genome(&genes, &params);
        let mut k2 = k1.clone();
        k2.repair(&params);
        prop_assert_eq!(k1, k2);
    }

    #[test]
    fn config_a_knob_space_is_also_ace(genes in proptest::collection::vec(0.0f64..1.0, GENOME_LEN)) {
        // The larger Table II machine: bigger ROB/IQ/DTLB/L2.
        let params = TargetParams {
            rob_entries: 96,
            line_bytes: 64,
            page_bytes: 8192,
            dtlb_entries: 512,
            dl1_bytes: 64 * 1024,
            l2_bytes: 2 * 1024 * 1024,
        };
        let sm = generate(&Knobs::from_genome(&genes, &params), &params);
        prop_assert!(sm.knobs.loop_size <= params.max_loop_size());
        let frac = dead_fraction(&sm.program, 20_000);
        prop_assert!(frac < 0.02, "dead fraction {frac:.4}");
    }
}

#[test]
fn hit_mode_is_ace_at_multiple_footprint_cycles() {
    // The hit template cycles its small footprint many times within even a
    // short run; store overwrites across passes must not create dead code.
    let params = TargetParams::baseline();
    let mut k = Knobs::paper_baseline();
    k.l2_mode = L2Mode::Hit;
    let sm = generate(&k, &params);
    // 16 kB footprint = 256 iterations/pass; 60k steps ≈ 10+ passes.
    let frac = dead_fraction(&sm.program, 60_000);
    assert!(frac < 0.02, "hit-mode dead fraction {frac:.4}");
}
