//! The code generator's knobs (paper Section IV-B) and their feasibility
//! repair.
//!
//! The Genetic Algorithm manipulates a normalized genome in `[0, 1]^11`;
//! [`Knobs::from_genome`] maps it onto the feasible knob space for a target
//! microarchitecture, and [`Knobs::repair`] enforces the structural
//! constraints that keep every generated instruction ACE.

/// The subset of a machine configuration the code generator needs.
///
/// `avf-codegen` deliberately does not depend on the simulator crate; the
/// caller (normally `avf-stressmark`) builds one of these from its
/// `MachineConfig`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TargetParams {
    /// Re-order buffer entries: the inner loop is capped at 1.2× this
    /// (paper Section IV-B).
    pub rob_entries: u32,
    /// Cache line size in bytes.
    pub line_bytes: u32,
    /// Page size in bytes.
    pub page_bytes: u64,
    /// DTLB entries; the chase array spans `page_bytes × dtlb_entries` so
    /// every translation is covered (Figure 2).
    pub dtlb_entries: u32,
    /// L1 data cache capacity in bytes (sizes the L2-hit template's
    /// footprint).
    pub dl1_bytes: u64,
    /// L2 capacity in bytes.
    pub l2_bytes: u64,
}

impl TargetParams {
    /// Parameters for the paper's Table I baseline machine.
    #[must_use]
    pub fn baseline() -> TargetParams {
        TargetParams {
            rob_entries: 80,
            line_bytes: 64,
            page_bytes: 8192,
            dtlb_entries: 256,
            dl1_bytes: 64 * 1024,
            l2_bytes: 1024 * 1024,
        }
    }

    /// Maximum inner-loop size (1.2 × ROB, paper Section IV-B).
    #[must_use]
    pub fn max_loop_size(&self) -> u32 {
        (self.rob_entries as f64 * 1.2) as u32
    }

    /// Chase-array footprint for the L2-miss template.
    #[must_use]
    pub fn miss_footprint(&self) -> u64 {
        self.page_bytes * u64::from(self.dtlb_entries)
    }

    /// Chase-array footprint for the L2-hit (miss-free) template: a quarter
    /// of the DL1, so after a short warmup the chase never leaves the L1
    /// and the machine runs with no long-latency stalls — the behaviour the
    /// GA exploits under EDR fault rates (paper Section VI-A).
    #[must_use]
    pub fn hit_footprint(&self) -> u64 {
        (self.dl1_bytes / 4).max(4 * u64::from(self.line_bytes))
    }
}

/// Which long-latency template the generator uses (knob 8, the "code
/// generator switch").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L2Mode {
    /// Pointer chase over a footprint larger than the L2: every chase load
    /// is a serialized L2 miss (the Figure 2 template).
    Miss,
    /// Pointer chase over a footprint that hits in the L2 but misses the
    /// DL1 — the variant the GA selects when ROB/LQ/SQ are protected
    /// (Section VI-A, Configuration EDR).
    Hit,
}

/// Number of genes in the GA genome.
pub const GENOME_LEN: usize = 11;

/// Code generator knobs (paper Section IV-B, Figures 5a/8c/8d/9b).
#[derive(Debug, Clone, PartialEq)]
pub struct Knobs {
    /// Inner loop size in instructions (including loads, stores, arithmetic,
    /// the lag-pointer move and the loop branch).
    pub loop_size: u32,
    /// Number of loads, including the pointer-chasing load.
    pub n_loads: u32,
    /// Number of stores.
    pub n_stores: u32,
    /// Independent arithmetic instructions (not transitively dependent on
    /// any load).
    pub n_indep_arith: u32,
    /// Instructions dependent on the long-latency chase load (they occupy
    /// the IQ in the miss shadow).
    pub n_dep_on_miss: u32,
    /// Desired average dependence-chain length from a load to a store.
    pub avg_dep_chain_len: f64,
    /// Minimum instruction distance between dependent instructions.
    pub dep_distance: u32,
    /// Fraction of chain/independent arithmetic that is long-latency
    /// (multiply).
    pub frac_long_latency: f64,
    /// Fraction of arithmetic using a register second operand (vs an
    /// immediate).
    pub frac_reg_reg: f64,
    /// Seed for schedule randomization (knob 7).
    pub seed: u64,
    /// L2-miss vs L2-hit template (knob 8).
    pub l2_mode: L2Mode,
}

impl Knobs {
    /// The paper's final baseline GA solution (Figure 5a), used as a
    /// reference point and in tests.
    #[must_use]
    pub fn paper_baseline() -> Knobs {
        Knobs {
            loop_size: 81,
            n_loads: 29,
            n_stores: 28,
            n_indep_arith: 5,
            n_dep_on_miss: 7,
            avg_dep_chain_len: 2.14,
            dep_distance: 6,
            frac_long_latency: 0.8,
            frac_reg_reg: 0.93,
            seed: 1,
            l2_mode: L2Mode::Miss,
        }
    }

    /// Maps a normalized genome (`[0,1]` per gene) onto feasible knobs for
    /// `params`. Panics if `genes.len() != GENOME_LEN`.
    #[must_use]
    pub fn from_genome(genes: &[f64], params: &TargetParams) -> Knobs {
        assert_eq!(genes.len(), GENOME_LEN, "genome length mismatch");
        let g = |i: usize| genes[i].clamp(0.0, 1.0);
        let max_loop = params.max_loop_size();
        let loop_size = lerp_u32(10, max_loop, g(0));
        let mut k = Knobs {
            loop_size,
            n_loads: lerp_u32(1, loop_size / 2, g(1)),
            n_stores: lerp_u32(1, loop_size / 2, g(2)),
            n_indep_arith: lerp_u32(0, loop_size / 4, g(3)),
            n_dep_on_miss: lerp_u32(0, loop_size / 3, g(4)),
            avg_dep_chain_len: 1.0 + g(5) * 15.0,
            dep_distance: lerp_u32(1, 8, g(6)),
            frac_long_latency: g(7),
            frac_reg_reg: g(8),
            seed: (g(9) * u32::MAX as f64) as u64,
            l2_mode: if g(10) < 0.5 {
                L2Mode::Miss
            } else {
                L2Mode::Hit
            },
        };
        k.repair(params);
        k
    }

    /// Clamps the knobs into the feasible region:
    ///
    /// * loop size within `[8, 1.2 × ROB]`;
    /// * at least one load (the chase) and one store (the ACE sink);
    /// * fixed overhead (chase + lag move + branch) plus memory operations,
    ///   merge/fold bookkeeping, miss-shadow and independent arithmetic all
    ///   fit within the loop.
    pub fn repair(&mut self, params: &TargetParams) {
        self.loop_size = self.loop_size.clamp(10, params.max_loop_size());
        self.dep_distance = self.dep_distance.clamp(1, 8);
        self.frac_long_latency = self.frac_long_latency.clamp(0.0, 1.0);
        self.frac_reg_reg = self.frac_reg_reg.clamp(0.0, 1.0);
        self.avg_dep_chain_len = self.avg_dep_chain_len.clamp(1.0, 16.0);

        // Fixed overhead beyond the chase load (which n_loads counts): the
        // DTLB-coverage touch load and its merge, the lag-pointer move, and
        // the loop branch.
        let overhead = 4u32;
        let body = self.loop_size - overhead;

        // Memory ops must leave room for the mandatory merge ops (one per
        // load) that guarantee every value transitively reaches a store.
        self.n_loads = self.n_loads.clamp(1, 25);
        self.n_stores = self.n_stores.clamp(1, 25);
        let min_loads = match self.l2_mode {
            // The L2-hit template cycles a small footprint, so stores are
            // overwritten within a few hundred iterations: at least one
            // coverage load must exist to keep them ACE.
            L2Mode::Hit => 2,
            L2Mode::Miss => 1,
        };
        self.n_loads = self.n_loads.max(min_loads);
        // loads + stores + merges(= n_loads) + folds(= extra loads beyond
        // chain registers) must fit in ~3/4 of the body.
        while self.mem_cost() > body.saturating_mul(3) / 4 {
            if self.n_stores > 1 && self.n_stores >= self.n_loads {
                self.n_stores -= 1;
            } else if self.n_loads > min_loads {
                self.n_loads -= 1;
            } else {
                break;
            }
        }
        // A cache line offers 6 store slots per iteration (slot 0 holds the
        // chase pointer, slot 7 the DTLB touch chain); stores beyond those
        // reuse slots on lagged lines and are overwritten within a few
        // iterations, so each must be read by a matching coverage load in
        // the same iteration to stay ACE. Under the L2-hit template that
        // applies to *every* store.
        self.n_stores = self.n_stores.min(6 + (self.n_loads - 1));
        if self.l2_mode == L2Mode::Hit {
            self.n_stores = self.n_stores.min(self.n_loads - 1).max(1);
        }

        let arith_budget = body.saturating_sub(self.mem_cost());
        self.n_dep_on_miss = self.n_dep_on_miss.min(arith_budget);
        let after_miss = arith_budget - self.n_dep_on_miss;
        // Chain ops approach the requested average length, then independent
        // arithmetic takes what is left.
        let chains = self.chain_count();
        let chain_target =
            (((self.avg_dep_chain_len - 1.0) * f64::from(chains)).round() as u32).min(after_miss);
        self.n_indep_arith = self.n_indep_arith.min(after_miss - chain_target);
    }

    /// Number of load-seeded dependence chains (bounded by the register
    /// pool; extra loads fold into existing chains).
    #[must_use]
    pub fn chain_count(&self) -> u32 {
        self.n_loads.min(8)
    }

    /// Instructions consumed by memory operations and their ACE-preserving
    /// bookkeeping: loads + stores + one merge per chain + one fold per
    /// extra load.
    #[must_use]
    pub fn mem_cost(&self) -> u32 {
        let folds = self.n_loads.saturating_sub(self.chain_count());
        self.n_loads + self.n_stores + self.chain_count() + folds
    }

    /// Arithmetic instructions available for chains and independent ops.
    #[must_use]
    pub fn arith_budget(&self) -> u32 {
        (self.loop_size - 4).saturating_sub(self.mem_cost())
    }
}

fn lerp_u32(lo: u32, hi: u32, t: f64) -> u32 {
    if hi <= lo {
        return lo;
    }
    lo + ((f64::from(hi - lo) * t).round() as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn genome_maps_into_feasible_region() {
        let params = TargetParams::baseline();
        for pattern in 0..64u32 {
            let genes: Vec<f64> = (0..GENOME_LEN)
                .map(|i| f64::from((pattern >> (i % 6)) & 1) * 0.9 + 0.05)
                .collect();
            let k = Knobs::from_genome(&genes, &params);
            assert!(
                k.loop_size >= 10 && k.loop_size <= 96,
                "loop {}",
                k.loop_size
            );
            assert!(k.n_loads >= 1);
            assert!(k.n_stores >= 1);
            assert!(k.mem_cost() + k.n_dep_on_miss + k.n_indep_arith + 4 <= k.loop_size);
        }
    }

    #[test]
    fn extreme_genomes_are_repaired() {
        let params = TargetParams::baseline();
        let all_ones = vec![1.0; GENOME_LEN];
        let k = Knobs::from_genome(&all_ones, &params);
        assert!(k.loop_size <= params.max_loop_size());
        assert_eq!(k.l2_mode, L2Mode::Hit);
        let all_zero = vec![0.0; GENOME_LEN];
        let k = Knobs::from_genome(&all_zero, &params);
        assert_eq!(k.loop_size, 10);
        assert_eq!(k.l2_mode, L2Mode::Miss);
    }

    #[test]
    fn max_loop_size_is_1_2x_rob() {
        assert_eq!(TargetParams::baseline().max_loop_size(), 96);
    }

    #[test]
    fn footprints() {
        let p = TargetParams::baseline();
        assert_eq!(p.miss_footprint(), 2 * 1024 * 1024);
        assert_eq!(
            p.hit_footprint(),
            16 * 1024,
            "hit template stays L1-resident"
        );
    }

    #[test]
    fn hit_mode_forces_matched_stores() {
        let params = TargetParams::baseline();
        let mut k = Knobs::paper_baseline();
        k.l2_mode = L2Mode::Hit;
        k.n_loads = 1;
        k.n_stores = 10;
        k.repair(&params);
        assert!(k.n_loads >= 2);
        assert!(k.n_stores < k.n_loads);
    }

    #[test]
    fn paper_knobs_are_feasible_after_repair() {
        let params = TargetParams::baseline();
        let mut k = Knobs::paper_baseline();
        k.repair(&params);
        assert!(k.loop_size <= params.max_loop_size());
        assert!(k.n_loads >= 1 && k.n_stores >= 1);
        assert!(k.arith_budget() >= k.n_dep_on_miss + k.n_indep_arith);
    }

    #[test]
    #[should_panic(expected = "genome length")]
    fn wrong_genome_length_panics() {
        let _ = Knobs::from_genome(&[0.5; 3], &TargetParams::baseline());
    }
}
