//! The stressmark code generator (paper Figure 2 and Section IV-B).
//!
//! Template, per inner-loop iteration:
//!
//! 1. a self-dependent pointer-chasing load that misses (or, in
//!    [`L2Mode::Hit`], hits) the L2 — the long-latency anchor with no
//!    memory-level parallelism;
//! 2. stores covering the non-pointer slots of recently-chased ("previous")
//!    cache lines, driving DL1/L2/DTLB ACE coverage;
//! 3. coverage loads reading those freshly-stored slots (Write⇒Read, and
//!    the reads keep the stores ACE);
//! 4. interleaved dependence chains: a chain waiting on the chase load
//!    (IQ occupancy in the miss shadow), load-seeded chains, and
//!    independent arithmetic on store-accumulator registers;
//! 5. mandatory merge/fold operations that fold every produced value into a
//!    stored accumulator — the structural guarantee that *every*
//!    instruction is ACE;
//! 6. the lag-pointer move and an always-taken loop branch.

use avf_isa::{DataSegment, Opcode, Operand, Program, ProgramBuilder, Reg, DATA_BASE};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::knobs::{Knobs, L2Mode, TargetParams};
use crate::schedule::{Item, Scheduler};

/// Byte offset of the chase array within the data segment (a guard margin
/// absorbs negative lagged-store offsets near the start).
const CHASE_MARGIN: u64 = 4096;

/// Register roles.
const R_P: u8 = 1; // chase pointer
const R_PREV: u8 = 2; // lagged pointer (previous chase line)
const R_ONE: u8 = 3; // constant 1 for the loop branch
const R_Q: u8 = 30; // DTLB touch-chain pointer
const POOL_BASE: u8 = 4; // first general-pool register

/// Byte offset within a line reserved for the DTLB touch chain's pointers
/// (slot 7; slot 0 holds the chase pointer, slots 1..=6 are store targets).
const TOUCH_SLOT: u64 = 56;

/// Derived properties of a generated stressmark, reported alongside the
/// knob values in the Figure 5a/8c/8d/9b tables.
#[derive(Debug, Clone, PartialEq)]
pub struct Derived {
    /// Total instructions in the emitted loop body.
    pub body_len: u32,
    /// Chain (load-dependent) arithmetic operations.
    pub chain_ops: u32,
    /// Independent arithmetic operations.
    pub indep_ops: u32,
    /// Merge/fold bookkeeping operations.
    pub merge_ops: u32,
    /// Realized average dependence-chain length (load to store).
    pub avg_chain_len: f64,
    /// Chase-array footprint in bytes.
    pub footprint: u64,
}

/// A generated stressmark candidate: the program plus its provenance.
#[derive(Debug, Clone)]
pub struct Stressmark {
    /// The runnable program (text + initialized chase array).
    pub program: Program,
    /// The knob values that produced it (post-repair).
    pub knobs: Knobs,
    /// Derived structural properties.
    pub derived: Derived,
}

/// Generates a stressmark candidate from (repaired) knob values.
///
/// # Panics
///
/// Panics if the knobs are infeasible; use [`Knobs::repair`] or
/// [`Knobs::from_genome`] first.
#[must_use]
pub fn generate(knobs: &Knobs, params: &TargetParams) -> Stressmark {
    let mut knobs = knobs.clone();
    knobs.repair(params);
    let mut rng = SmallRng::seed_from_u64(knobs.seed);

    let footprint = match knobs.l2_mode {
        L2Mode::Miss => params.miss_footprint(),
        L2Mode::Hit => params.hit_footprint(),
    };
    let line = u64::from(params.line_bytes);
    let n_nodes = (footprint / line) as usize;

    // Chase array: node i -> node i+1 (cyclic), one node per cache line.
    let mut data = DataSegment::zeroed((CHASE_MARGIN + footprint) as usize);
    let chase_base = DATA_BASE + CHASE_MARGIN;
    for i in 0..n_nodes {
        let next = chase_base + ((i + 1) % n_nodes) as u64 * line;
        data.put_u64(CHASE_MARGIN as usize + i * line as usize, next);
    }

    // DTLB touch chain: one node per page, cyclic, kept in reserved slot 7
    // of a per-page line chosen to spread across cache sets. Touching every
    // page each `n_pages` iterations keeps all DTLB entries continuously
    // read ("cover every line in the DTLB without evictions", Figure 2).
    let lines_per_page = (params.page_bytes / line).max(1);
    let n_pages = footprint.div_ceil(params.page_bytes).max(1);
    let touch_addr = |p: u64| -> u64 {
        let l = if lines_per_page > 1 {
            1 + (3 * p) % (lines_per_page - 1)
        } else {
            0
        };
        let node = chase_base + p * params.page_bytes + l * line + TOUCH_SLOT;
        node.min(chase_base + footprint - 8)
    };
    for p in 0..n_pages {
        let next = touch_addr((p + 1) % n_pages);
        let at = touch_addr(p);
        data.put_u64((at - DATA_BASE) as usize, next);
    }

    // Register allocation.
    let n_chains = knobs.chain_count();
    let n_x = knobs.n_stores.clamp(1, 8);
    let x_regs: Vec<u8> = (0..n_x as u8).map(|i| POOL_BASE + i).collect();
    let c_regs: Vec<u8> = (0..n_chains as u8)
        .map(|i| POOL_BASE + n_x as u8 + i)
        .collect();
    let t_regs: [u8; 2] = [
        POOL_BASE + (n_x + n_chains) as u8,
        POOL_BASE + (n_x + n_chains) as u8 + 1,
    ];
    assert!(t_regs[1] < 31, "register pool overflow");

    // Arithmetic budget split.
    let arith_budget = knobs.arith_budget();
    let d = knobs.n_dep_on_miss;
    let indep = knobs.n_indep_arith.min(arith_budget - d);
    let chain_ops_total = arith_budget - d - indep;

    // Build schedulable items.
    let mut sched = Scheduler::new(knobs.seed ^ 0x5eed, knobs.dep_distance);
    let s = knobs.n_stores as usize;
    let l_cov = (knobs.n_loads - 1) as usize; // coverage loads (chase excluded)

    // Store offsets: slots 1..=6 on the previous chase line (slot 0 is the
    // chase pointer, slot 7 the DTLB touch chain), then slots on deeper
    // lagged lines.
    let offset_of = |j: usize| -> i32 {
        let slot = (j % 6) as i32 + 1;
        let lag = (j / 6) as i32;
        8 * slot - i32::try_from(line).expect("line fits i32") * lag
    };
    let store_items: Vec<usize> = (0..s)
        .map(|j| {
            sched.add(Item::store(
                Opcode::Stq,
                x_regs[j % x_regs.len()],
                R_PREV,
                offset_of(j),
            ))
        })
        .collect();

    // Coverage loads match stores ascending from j = 0: store j is
    // overwritten by store j+6 (same slot, one lag deeper) one iteration
    // later, so every store with j + 6 < S must be read in the same
    // iteration to stay ACE; the highest-lag store of each slot survives to
    // the next full pass. `Knobs::repair` guarantees enough coverage loads.
    let mut load_items = Vec::with_capacity(l_cov);
    for k in 0..l_cov {
        let j = k % s;
        let dest = if (k as u32) < n_chains.saturating_sub(1) {
            c_regs[k + 1] // seeds chain k+1
        } else {
            t_regs[k % 2] // folded into an accumulator
        };
        let it = sched.add(Item::load(Opcode::Ldq, dest, R_PREV, offset_of(j)));
        sched.add_dep(store_items[j], it);
        load_items.push(it);
    }

    // Folds: extra loads xor into an always-stored accumulator; the next
    // load reusing the temp register must wait for the fold.
    let mut merge_ops = 0u32;
    for (x_rr, (k, &load_it)) in load_items
        .iter()
        .enumerate()
        .skip(n_chains.saturating_sub(1) as usize)
        .enumerate()
    {
        let x = x_regs[x_rr % x_regs.len()];
        let fold = sched.add(Item::alu(
            Opcode::Xor,
            x,
            x,
            Operand::Reg(Reg::of(t_regs[k % 2])),
        ));
        sched.add_dep(load_it, fold);
        sched.set_chain(fold, 100 + (k % 2)); // spacing key on the temp reg
        if let Some(&next_load) = load_items.get(k + 2) {
            sched.add_dep(fold, next_load);
        }
        merge_ops += 1;
    }

    // Dependence chains. Chain 0 waits on the chase load; chains 1.. are
    // seeded by their coverage load.
    let frac_long = knobs.frac_long_latency;
    let rand_op = move |rng: &mut SmallRng| -> Opcode {
        if rng.gen_bool(frac_long) {
            Opcode::Mul
        } else {
            [Opcode::Add, Opcode::Sub, Opcode::Xor][rng.gen_range(0..3)]
        }
    };
    let frac_rr = knobs.frac_reg_reg;
    let x_for_operand = x_regs.clone();
    let rand_operand = move |rng: &mut SmallRng| -> Operand {
        if rng.gen_bool(frac_rr) {
            Operand::Reg(Reg::of(
                x_for_operand[rng.gen_range(0..x_for_operand.len())],
            ))
        } else {
            Operand::Imm(rng.gen_range(1..64))
        }
    };

    let mut chain_lens = vec![0u32; n_chains as usize];
    let mut chain_tail: Vec<Option<usize>> = vec![None; n_chains as usize];

    // Chain 0: the miss-shadow chain.
    let mut prev_item: Option<usize> = None;
    for di in 0..d {
        let src = if di == 0 { R_P } else { c_regs[0] };
        let it = sched.add(Item::alu(
            rand_op(&mut rng),
            c_regs[0],
            src,
            rand_operand(&mut rng),
        ));
        sched.set_chain(it, 0);
        if let Some(p) = prev_item {
            sched.add_dep(p, it);
        }
        prev_item = Some(it);
        chain_lens[0] += 1;
    }
    chain_tail[0] = prev_item;

    // Remaining chain ops round-robin over chains 1.. (or chain 0 if alone).
    let targets: Vec<u32> = if n_chains > 1 {
        (1..n_chains).collect()
    } else {
        vec![0]
    };
    for i in 0..chain_ops_total {
        let c = targets[i as usize % targets.len()] as usize;
        let reg = c_regs[c];
        let it = sched.add(Item::alu(
            rand_op(&mut rng),
            reg,
            reg,
            rand_operand(&mut rng),
        ));
        sched.set_chain(it, c);
        let prev = chain_tail[c].or(if c == 0 {
            None
        } else {
            load_items.get(c - 1).copied()
        });
        if let Some(p) = prev {
            sched.add_dep(p, it);
        }
        chain_lens[c] += 1;
        chain_tail[c] = Some(it);
    }

    // Merges: every chain folds into a stored accumulator once per
    // iteration — this is what makes every chain value reach memory.
    for c in 0..n_chains as usize {
        let x = x_regs[c % x_regs.len()];
        // Chain 0 may be empty (no miss-shadow or round-robin ops); its
        // merge then folds the chase pointer itself.
        let src = if c == 0 && chain_lens[0] == 0 {
            R_P
        } else {
            c_regs[c]
        };
        let it = sched.add(Item::alu(Opcode::Xor, x, x, Operand::Reg(Reg::of(src))));
        let prev = chain_tail[c].or(if c == 0 {
            None
        } else {
            load_items.get(c - 1).copied()
        });
        if let Some(p) = prev {
            sched.add_dep(p, it);
        }
        merge_ops += 1;
    }

    // Independent arithmetic on the accumulators (no load dependence).
    for i in 0..indep {
        let x = x_regs[i as usize % x_regs.len()];
        let op = rand_op(&mut rng);
        let operand = if rng.gen_bool(knobs.frac_reg_reg) {
            Operand::Reg(Reg::of(x_regs[rng.gen_range(0..x_regs.len())]))
        } else {
            Operand::Imm(rng.gen_range(1..64))
        };
        sched.add(Item::alu(op, x, x, operand));
    }

    // Emit the program.
    let mut b = ProgramBuilder::new(stressmark_name(&knobs)).with_data(data);
    b.load_addr(Reg::of(R_P), chase_base);
    b.load_addr(Reg::of(R_PREV), chase_base);
    b.addi(Reg::of(R_ONE), Reg::ZERO, 1);
    for (i, &x) in x_regs.iter().enumerate() {
        b.addi(Reg::of(x), Reg::ZERO, (17 + i as i16) * 3);
    }
    b.load_addr(Reg::of(R_Q), touch_addr(0));
    let top = b.here();
    // The self-dependent chase load: no MLP across iterations.
    b.ldq(Reg::of(R_P), Reg::of(R_P), 0);
    // DTLB touch chase (cache-resident) and its ACE-preserving merge.
    b.ldq(Reg::of(R_Q), Reg::of(R_Q), 0);
    let order = sched.schedule();
    for inst in &order {
        b.push(*inst);
    }
    b.alu_rr(
        Opcode::Xor,
        Reg::of(x_regs[0]),
        Reg::of(x_regs[0]),
        Reg::of(R_Q),
    );
    b.mov(Reg::of(R_PREV), Reg::of(R_P));
    b.bne(Reg::of(R_ONE), top);
    let program = b.build().expect("generated program is structurally valid");

    let chain_count = chain_lens.len().max(1) as f64;
    let avg_chain_len = 1.0 + chain_lens.iter().sum::<u32>() as f64 / chain_count;
    let derived = Derived {
        body_len: order.len() as u32 + 5,
        chain_ops: chain_ops_total + d,
        indep_ops: indep,
        merge_ops,
        avg_chain_len,
        footprint,
    };
    Stressmark {
        program,
        knobs,
        derived,
    }
}

fn stressmark_name(k: &Knobs) -> String {
    format!(
        "stressmark[{}:L{}/S{}/D{}]",
        match k.l2_mode {
            L2Mode::Miss => "miss",
            L2Mode::Hit => "hit",
        },
        k.n_loads,
        k.n_stores,
        k.n_dep_on_miss
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> TargetParams {
        TargetParams::baseline()
    }

    #[test]
    fn generates_requested_loop_size() {
        let mut k = Knobs::paper_baseline();
        k.repair(&params());
        let sm = generate(&k, &params());
        // body_len counts everything between `top` and the branch inclusive.
        assert_eq!(sm.derived.body_len, sm.knobs.loop_size);
    }

    #[test]
    fn loop_contains_requested_mix() {
        let mut k = Knobs::paper_baseline();
        k.repair(&params());
        let sm = generate(&k, &params());
        let insts = sm.program.insts();
        let loads = insts.iter().filter(|i| i.op.is_load()).count() as u32;
        let stores = insts.iter().filter(|i| i.op.is_store()).count() as u32;
        // +1: the always-present DTLB touch load.
        assert_eq!(loads, sm.knobs.n_loads + 1);
        assert_eq!(stores, sm.knobs.n_stores);
    }

    #[test]
    fn no_nops_or_halts_emitted() {
        let sm = generate(&Knobs::paper_baseline(), &params());
        assert!(sm
            .program
            .insts()
            .iter()
            .all(|i| i.op != Opcode::Nop && i.op != Opcode::Halt));
    }

    #[test]
    fn chase_array_is_cyclic() {
        let sm = generate(&Knobs::paper_baseline(), &params());
        let data = sm.program.data();
        let line = 64usize;
        let n = (sm.derived.footprint as usize) / line;
        let base = DATA_BASE + CHASE_MARGIN;
        // Follow the chain n hops and confirm it returns to the start.
        let mut p = base;
        for _ in 0..n {
            let off = (p - data.base) as usize;
            p = u64::from_le_bytes(data.bytes[off..off + 8].try_into().unwrap());
        }
        assert_eq!(p, base);
    }

    #[test]
    fn hit_mode_shrinks_footprint() {
        let mut k = Knobs::paper_baseline();
        k.l2_mode = L2Mode::Hit;
        let sm = generate(&k, &params());
        assert_eq!(sm.derived.footprint, params().hit_footprint());
        assert!(sm.derived.footprint < params().miss_footprint());
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = generate(&Knobs::paper_baseline(), &params());
        let b = generate(&Knobs::paper_baseline(), &params());
        assert_eq!(a.program.insts(), b.program.insts());
    }

    #[test]
    fn different_seed_changes_schedule() {
        let mut k1 = Knobs::paper_baseline();
        k1.frac_long_latency = 0.5;
        let mut k2 = k1.clone();
        k2.seed = 999;
        let a = generate(&k1, &params());
        let b = generate(&k2, &params());
        assert_ne!(
            a.program.insts(),
            b.program.insts(),
            "seed must reshuffle the schedule"
        );
    }

    #[test]
    fn long_latency_fraction_controls_muls() {
        let mut lo = Knobs::paper_baseline();
        lo.frac_long_latency = 0.0;
        let mut hi = lo.clone();
        hi.frac_long_latency = 1.0;
        let n_mul = |sm: &Stressmark| {
            sm.program
                .insts()
                .iter()
                .filter(|i| i.op == Opcode::Mul)
                .count()
        };
        let a = generate(&lo, &params());
        let b = generate(&hi, &params());
        assert_eq!(n_mul(&a), 0);
        assert!(n_mul(&b) > 5);
    }

    #[test]
    fn uses_many_architected_registers() {
        let sm = generate(&Knobs::paper_baseline(), &params());
        let mut used = std::collections::HashSet::new();
        for inst in sm.program.insts() {
            if let Some(d) = inst.dest_reg() {
                used.insert(d.number());
            }
            for s in inst.src_regs().into_iter().flatten() {
                used.insert(s.number());
            }
        }
        assert!(
            used.len() >= 12,
            "expected a wide register footprint, got {}",
            used.len()
        );
    }
}
