//! Functional ACE verification of generated programs.
//!
//! The paper's generator "must ensure that every instruction is ACE"
//! (Section IV). This module executes a program functionally (no timing)
//! and feeds the retirement stream through the [`avf_ace::DeadnessEngine`],
//! returning the fraction of dynamically dead instructions. Generated
//! stressmarks must score ≈ 0 (only prologue constants and end-of-run
//! tails may be dead).

use avf_ace::{AceKind, DeadnessEngine, InstrRecord, MemRef};
use avf_isa::{ExecState, Memory, OpClass, Program};

/// Executes `steps` instructions of `program` functionally and returns the
/// dead-instruction fraction reported by the deadness engine.
///
/// # Panics
///
/// Panics if the program leaves its text (a malformed program).
#[must_use]
pub fn dead_fraction(program: &Program, steps: u64) -> f64 {
    let mut mem = Memory::new();
    let mut st = ExecState::new(program, &mut mem);
    let mut engine = DeadnessEngine::new();
    for _ in 0..steps {
        if st.is_halted() {
            break;
        }
        let pc = st.pc;
        let inst = *program.fetch(pc).expect("program left text");
        let outcome = st.exec_inst(&inst, pc, &mut mem);
        st.pc = outcome.next_pc;
        let kind = match inst.op.class() {
            OpClass::Branch => AceKind::Branch,
            OpClass::Store => AceKind::Store,
            OpClass::Nop => AceKind::Nop,
            OpClass::Halt => AceKind::Halt,
            _ => AceKind::Value,
        };
        let mut rec = InstrRecord::of_kind(kind);
        for (slot, src) in inst.src_regs().into_iter().enumerate() {
            rec.srcs[slot] = src.map(|r| r.number());
        }
        rec.dest = inst.dest_reg().map(|r| r.number());
        rec.mem = outcome.ea.map(|ea| MemRef {
            addr: ea,
            bytes: outcome.size.map_or(8, |s| s.bytes() as u8),
        });
        engine.commit(rec);
        if outcome.halted {
            break;
        }
    }
    engine.finish();
    engine.stats().dead_fraction()
}

#[cfg(test)]
mod tests {
    use super::*;
    use avf_isa::{Opcode, ProgramBuilder, Reg};

    #[test]
    fn dead_code_is_detected() {
        let r = Reg::of(1);
        let mut b = ProgramBuilder::new("deadish");
        b.addi(r, Reg::ZERO, 1);
        let top = b.here();
        b.addi(Reg::of(2), Reg::ZERO, 5); // overwritten next iteration, never read
        b.alu_ri(Opcode::Add, Reg::of(3), Reg::of(3), 1); // self chain, never stored
        b.bne(r, top);
        let p = b.build().unwrap();
        let frac = dead_fraction(&p, 4000);
        assert!(frac > 0.3, "expected substantial dead code, got {frac}");
    }

    #[test]
    fn store_fed_loop_is_ace() {
        let r = Reg::of(1);
        let base = Reg::of(4);
        let mut b = ProgramBuilder::new("live");
        b.load_addr(base, avf_isa::DATA_BASE);
        b.addi(r, Reg::ZERO, 1);
        let top = b.here();
        b.ldq(Reg::of(2), base, 0);
        b.alu_ri(Opcode::Add, Reg::of(2), Reg::of(2), 1);
        b.stq(Reg::of(2), base, 0);
        b.bne(r, top);
        let p = b.build().unwrap();
        let frac = dead_fraction(&p, 4000);
        assert!(frac < 0.01, "expected fully ACE loop, got {frac}");
    }
}
