//! Randomized list scheduler for the loop body.
//!
//! The generator expresses the body as items with precedence edges (chain
//! order, store-before-matching-load, fold-before-temp-reuse) and chain
//! keys; the scheduler emits a topological order that (best-effort)
//! respects the *dependency distance* knob by spacing consecutive
//! operations of the same chain, with the placement randomized by the
//! *random seed* knob (paper Section IV-B, knobs 2 and 7).

use std::collections::HashMap;

use avf_isa::{Inst, Opcode, Operand, Reg};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One schedulable instruction.
#[derive(Debug, Clone)]
pub(crate) struct Item {
    inst: Inst,
}

impl Item {
    pub(crate) fn store(op: Opcode, data: u8, base: u8, disp: i32) -> Item {
        Item {
            inst: Inst::store(op, Reg::of(data), Reg::of(base), disp),
        }
    }

    pub(crate) fn load(op: Opcode, dest: u8, base: u8, disp: i32) -> Item {
        Item {
            inst: Inst::load(op, Reg::of(dest), Reg::of(base), disp),
        }
    }

    pub(crate) fn alu(op: Opcode, dest: u8, src1: u8, src2: Operand) -> Item {
        Item {
            inst: Inst::alu(op, Reg::of(dest), Reg::of(src1), src2),
        }
    }
}

struct Node {
    inst: Inst,
    succs: Vec<usize>,
    preds_left: usize,
    chain: Option<usize>,
}

/// Precedence-aware randomized list scheduler.
pub(crate) struct Scheduler {
    nodes: Vec<Node>,
    rng: SmallRng,
    dep_distance: u32,
}

impl Scheduler {
    pub(crate) fn new(seed: u64, dep_distance: u32) -> Scheduler {
        Scheduler {
            nodes: Vec::new(),
            rng: SmallRng::seed_from_u64(seed),
            dep_distance,
        }
    }

    /// Adds an item, returning its id.
    pub(crate) fn add(&mut self, item: Item) -> usize {
        self.nodes.push(Node {
            inst: item.inst,
            succs: Vec::new(),
            preds_left: 0,
            chain: None,
        });
        self.nodes.len() - 1
    }

    /// Requires `before` to be emitted before `after`.
    pub(crate) fn add_dep(&mut self, before: usize, after: usize) {
        self.nodes[before].succs.push(after);
        self.nodes[after].preds_left += 1;
    }

    /// Tags an item with a chain key for dependency-distance spacing.
    pub(crate) fn set_chain(&mut self, item: usize, key: usize) {
        self.nodes[item].chain = Some(key);
    }

    /// Produces the scheduled instruction order.
    ///
    /// # Panics
    ///
    /// Panics if the precedence graph contains a cycle (a generator bug).
    pub(crate) fn schedule(mut self) -> Vec<Inst> {
        let n = self.nodes.len();
        let mut ready: Vec<usize> = (0..n).filter(|&i| self.nodes[i].preds_left == 0).collect();
        let mut out = Vec::with_capacity(n);
        let mut last_slot: HashMap<usize, usize> = HashMap::new();
        let dist = self.dep_distance as usize;

        while out.len() < n {
            assert!(!ready.is_empty(), "cycle in schedule precedence graph");
            let slot = out.len();
            // Items whose chain spacing is satisfied at this slot.
            let eligible: Vec<usize> = ready
                .iter()
                .copied()
                .filter(|&i| match self.nodes[i].chain {
                    Some(key) => last_slot.get(&key).is_none_or(|&ls| ls + dist <= slot),
                    None => true,
                })
                .collect();
            // Chain-tagged items are placed as soon as their spacing allows
            // (randomized among competing chains); untagged fillers are
            // conserved to pad the gaps. If everyone is blocked on spacing,
            // relax and take the most overdue item, as the paper's
            // generator meets the distance requirement best-effort.
            let chain_eligible: Vec<usize> = eligible
                .iter()
                .copied()
                .filter(|&i| self.nodes[i].chain.is_some())
                .collect();
            let pick_id = if !chain_eligible.is_empty() {
                chain_eligible[self.rng.gen_range(0..chain_eligible.len())]
            } else if !eligible.is_empty() {
                eligible[self.rng.gen_range(0..eligible.len())]
            } else {
                ready
                    .iter()
                    .copied()
                    .min_by_key(|&i| {
                        self.nodes[i]
                            .chain
                            .and_then(|k| last_slot.get(&k))
                            .copied()
                            .unwrap_or(0)
                    })
                    .expect("ready non-empty")
            };
            ready.retain(|&i| i != pick_id);
            if let Some(key) = self.nodes[pick_id].chain {
                last_slot.insert(key, slot);
            }
            out.push(self.nodes[pick_id].inst);
            let succs = self.nodes[pick_id].succs.clone();
            for s in succs {
                self.nodes[s].preds_left -= 1;
                if self.nodes[s].preds_left == 0 {
                    ready.push(s);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_precedence() {
        let mut s = Scheduler::new(42, 1);
        let a = s.add(Item::alu(Opcode::Add, 4, 4, Operand::Imm(1)));
        let b = s.add(Item::alu(Opcode::Sub, 5, 5, Operand::Imm(2)));
        let c = s.add(Item::alu(Opcode::Xor, 6, 6, Operand::Imm(3)));
        s.add_dep(a, b);
        s.add_dep(b, c);
        let order = s.schedule();
        assert_eq!(order.len(), 3);
        assert_eq!(order[0].op, Opcode::Add);
        assert_eq!(order[1].op, Opcode::Sub);
        assert_eq!(order[2].op, Opcode::Xor);
    }

    #[test]
    fn spaces_chain_members_when_possible() {
        let mut s = Scheduler::new(7, 3);
        // Chain of 3 dependent ops plus plenty of fillers, so spacing never
        // needs to be relaxed regardless of random placement.
        let mut prev = None;
        for _ in 0..3 {
            let it = s.add(Item::alu(Opcode::Add, 4, 4, Operand::Imm(1)));
            s.set_chain(it, 0);
            if let Some(p) = prev {
                s.add_dep(p, it);
            }
            prev = Some(it);
        }
        for i in 0..16 {
            s.add(Item::alu(
                Opcode::Xor,
                5 + (i % 20),
                5 + (i % 20),
                Operand::Imm(1),
            ));
        }
        let order = s.schedule();
        let positions: Vec<usize> = order
            .iter()
            .enumerate()
            .filter(|(_, inst)| inst.op == Opcode::Add)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(positions.len(), 3);
        assert!(positions[1] - positions[0] >= 3, "{positions:?}");
        assert!(positions[2] - positions[1] >= 3, "{positions:?}");
    }

    #[test]
    fn relaxes_spacing_when_starved() {
        // Only chain items: spacing cannot be met, but scheduling must
        // still complete.
        let mut s = Scheduler::new(1, 8);
        let mut prev = None;
        for _ in 0..4 {
            let it = s.add(Item::alu(Opcode::Add, 4, 4, Operand::Imm(1)));
            s.set_chain(it, 0);
            if let Some(p) = prev {
                s.add_dep(p, it);
            }
            prev = Some(it);
        }
        assert_eq!(s.schedule().len(), 4);
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn detects_cycles() {
        let mut s = Scheduler::new(1, 1);
        let a = s.add(Item::alu(Opcode::Add, 4, 4, Operand::Imm(1)));
        let b = s.add(Item::alu(Opcode::Add, 5, 5, Operand::Imm(1)));
        s.add_dep(a, b);
        s.add_dep(b, a);
        let _ = s.schedule();
    }
}
