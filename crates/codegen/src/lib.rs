//! # avf-codegen
//!
//! The AVF stressmark **code generator** (Nair, John & Eeckhout, MICRO 2010,
//! Section IV): a parameterized kernel generator whose knobs span the space
//! of ACE-preserving, occupancy-maximizing loops, designed to be driven by
//! a genetic algorithm.
//!
//! The knobs (Section IV-B) are: instruction mix (loads/stores/arithmetic),
//! dependency distance, fraction of long-latency arithmetic, average
//! dependence-chain length, register usage (reg-reg vs immediate),
//! instructions dependent on the L2 miss, a schedule-randomizing seed, and
//! the L2-miss/L2-hit template switch.
//!
//! Two properties distinguish this from a power virus or verification
//! generator (paper Section IV-B, "Unique Requirements"):
//!
//! 1. **100% ACE-ness** — every value loaded or produced transitively
//!    produces a value that is stored to memory, and stored results are not
//!    overwritten before they are read. The generator enforces this
//!    *structurally* (merge/fold accumulators, store/load offset matching);
//!    [`dead_fraction`] verifies it dynamically.
//! 2. **Maximal susceptible state**, not maximal switching activity: the
//!    long-latency anchor deliberately *stalls* the machine with full
//!    queues.
//!
//! ## Example
//!
//! ```
//! use avf_codegen::{generate, Knobs, TargetParams, dead_fraction};
//!
//! let params = TargetParams::baseline();
//! let sm = generate(&Knobs::paper_baseline(), &params);
//! // Every instruction in the steady-state loop is ACE.
//! assert!(dead_fraction(&sm.program, 20_000) < 0.01);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aceness;
mod generator;
mod knobs;
mod schedule;

pub use aceness::dead_fraction;
pub use generator::{generate, Derived, Stressmark};
pub use knobs::{Knobs, L2Mode, TargetParams, GENOME_LEN};
