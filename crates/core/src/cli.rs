//! Strict command-line argument parsing for `avf-stressmark`.
//!
//! The old ad-hoc parser silently ignored unrecognized `--flags`, so a
//! typo like `--ci-taget 0.05` ran a full *default* campaign and
//! reported success — the worst possible failure mode for a
//! measurement tool. This parser is spec-driven: every command declares
//! its flags (and whether each takes a value), unknown flags are hard
//! errors, and boolean flags never swallow the following token.

use std::fmt;

/// One flag a command accepts.
#[derive(Debug, Clone, Copy)]
pub struct FlagSpec {
    /// Flag name without the leading `--`.
    pub name: &'static str,
    /// Whether the flag consumes the next token as its value.
    pub takes_value: bool,
}

/// Declares a value-taking flag.
#[must_use]
pub const fn value_flag(name: &'static str) -> FlagSpec {
    FlagSpec {
        name,
        takes_value: true,
    }
}

/// Declares a boolean (presence-only) flag.
#[must_use]
pub const fn bool_flag(name: &'static str) -> FlagSpec {
    FlagSpec {
        name,
        takes_value: false,
    }
}

/// A parse failure, formatted for the CLI's `error:` line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ParseError {}

/// Parsed arguments of one command.
#[derive(Debug, Default)]
pub struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    /// Parses `argv` (the tokens *after* the command name) against the
    /// command's flag spec.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] for an unknown flag or a value-taking
    /// flag with no value.
    pub fn parse(argv: &[String], spec: &[FlagSpec]) -> Result<Args, ParseError> {
        let mut args = Args::default();
        let mut i = 0;
        while i < argv.len() {
            let token = &argv[i];
            if let Some(name) = token.strip_prefix("--") {
                let Some(flag) = spec.iter().find(|f| f.name == name) else {
                    let mut msg = format!("unknown flag `--{name}`");
                    if let Some(near) = closest(name, spec) {
                        msg.push_str(&format!(" (did you mean `--{near}`?)"));
                    }
                    return Err(ParseError(msg));
                };
                let value = if flag.takes_value {
                    let v = argv
                        .get(i + 1)
                        .filter(|v| !v.starts_with("--"))
                        .ok_or_else(|| ParseError(format!("flag `--{name}` expects a value")))?;
                    i += 1;
                    Some(v.clone())
                } else {
                    None
                };
                args.flags.push((name.to_owned(), value));
            } else {
                args.positional.push(token.clone());
            }
            i += 1;
        }
        Ok(args)
    }

    /// Positional arguments, in order.
    #[must_use]
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// The value of flag `name` (last occurrence wins).
    #[must_use]
    pub fn flag(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    /// Whether flag `name` appeared at all.
    #[must_use]
    pub fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    /// Parses flag `name` as a `u64`, defaulting when absent.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] when the value is not a number.
    pub fn parse_u64(&self, name: &str, default: u64) -> Result<u64, ParseError> {
        match self.flag(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ParseError(format!("--{name} expects a number, got `{v}`"))),
        }
    }

    /// Parses flag `name` as a CI half-width target in (0, 0.5).
    ///
    /// Wilson half-widths never exceed 0.5 (the no-data interval is
    /// [0, 1]), so a target of 0.5 or more is satisfied by zero trials
    /// — a vacuous "validation" this refuses to run.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] for a non-numeric or out-of-range value.
    pub fn parse_f64_opt(&self, name: &str) -> Result<Option<f64>, ParseError> {
        match self.flag(name) {
            None => Ok(None),
            Some(v) => v
                .parse::<f64>()
                .ok()
                .filter(|x| x.is_finite() && *x > 0.0 && *x < 0.5)
                .map(Some)
                .ok_or(ParseError(format!(
                    "--{name} expects a fraction in (0, 0.5), got `{v}`"
                ))),
        }
    }
}

/// The closest flag name within an edit distance a typo plausibly
/// produces, for "did you mean" hints.
fn closest(name: &str, spec: &[FlagSpec]) -> Option<&'static str> {
    spec.iter()
        .map(|f| (f.name, edit_distance(name, f.name)))
        .filter(|&(_, d)| d <= 2)
        .min_by_key(|&(_, d)| d)
        .map(|(n, _)| n)
}

/// Plain Levenshtein distance (flag names are tiny; O(nm) is free).
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut row = vec![i + 1];
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            row.push(sub.min(prev[j + 1] + 1).min(row[j] + 1));
        }
        prev = row;
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(tokens: &[&str]) -> Vec<String> {
        tokens.iter().map(|s| (*s).to_owned()).collect()
    }

    const SPEC: &[FlagSpec] = &[
        value_flag("ci-target"),
        value_flag("injections"),
        value_flag("seed"),
        bool_flag("tsv"),
    ];

    #[test]
    fn known_flags_parse() {
        let args = Args::parse(&argv(&["--injections", "500", "--tsv"]), SPEC).unwrap();
        assert_eq!(args.flag("injections"), Some("500"));
        assert!(args.has("tsv"));
        assert_eq!(args.parse_u64("injections", 0).unwrap(), 500);
        assert_eq!(args.parse_u64("seed", 42).unwrap(), 42);
    }

    #[test]
    fn unknown_flags_are_errors_with_a_hint() {
        // The motivating regression: a typo must not silently run a
        // full default campaign.
        let err = Args::parse(&argv(&["--ci-taget", "0.05"]), SPEC).unwrap_err();
        assert!(err.0.contains("unknown flag `--ci-taget`"), "{err}");
        assert!(err.0.contains("did you mean `--ci-target`"), "{err}");

        let err = Args::parse(&argv(&["--frobnicate"]), SPEC).unwrap_err();
        assert!(err.0.contains("unknown flag `--frobnicate`"), "{err}");
        assert!(!err.0.contains("did you mean"), "{err}");
    }

    #[test]
    fn boolean_flags_do_not_swallow_values() {
        let args = Args::parse(&argv(&["--tsv", "extra"]), SPEC).unwrap();
        assert!(args.has("tsv"));
        assert_eq!(args.positional(), &["extra".to_owned()]);
    }

    #[test]
    fn value_flags_require_values() {
        let err = Args::parse(&argv(&["--seed"]), SPEC).unwrap_err();
        assert!(err.0.contains("expects a value"), "{err}");
        let err = Args::parse(&argv(&["--seed", "--tsv"]), SPEC).unwrap_err();
        assert!(err.0.contains("expects a value"), "{err}");
    }

    #[test]
    fn last_duplicate_wins() {
        let args = Args::parse(&argv(&["--seed", "1", "--seed", "2"]), SPEC).unwrap();
        assert_eq!(args.flag("seed"), Some("2"));
    }

    #[test]
    fn ci_target_range_is_enforced() {
        let args = Args::parse(&argv(&["--ci-target", "0.6"]), SPEC).unwrap();
        assert!(args.parse_f64_opt("ci-target").is_err());
        let args = Args::parse(&argv(&["--ci-target", "0.05"]), SPEC).unwrap();
        assert_eq!(args.parse_f64_opt("ci-target").unwrap(), Some(0.05));
    }
}
