//! Command-line interface to the AVF stressmark methodology.
//!
//! ```text
//! avf-stressmark search   [--rates baseline|rhc|edr] [--machine baseline|config-a]
//!                         [--population N] [--generations N] [--eval N] [--final N] [--seed N]
//!                         [--threads N | --workers host:port,... | --broker host:port
//!                         [--tenant NAME]] [--auth-key-file F]
//! avf-stressmark suite    [--rates ...] [--machine ...] [--instructions N] [--tsv]
//! avf-stressmark fig      <3|4|5|6|7|8|9|table3> [--smoke]
//! avf-stressmark bounds   [--machine ...]
//! avf-stressmark validate [--machine ...] [--injections N] [--seed N]
//!                         [--instructions N] [--threads N] [--ci-target F]
//!                         [--batch N] [--checkpoint-interval N]
//!                         [--workers host:port,host:port,...]
//!                         [--prune off|on|audit]
//! avf-stressmark serve    --listen host:port [--threads N] [--auth-key-file F]
//!                         [--metrics host:port]
//! avf-stressmark broker   --listen host:port --workers host:port,...
//!                         [--store F] [--auth-key-file F] [--metrics host:port]
//! avf-stressmark submit   --broker host:port --tenant NAME [--program P] [--detach]
//! avf-stressmark attach   --broker host:port --tenant NAME --id N
//! ```
//!
//! Flags are strict: an unrecognized `--flag` is an error (with a
//! "did you mean" hint), never silently ignored.

use std::process::ExitCode;

use avf_ace::FaultRates;
use avf_broker::{Broker, BrokerClient, BrokerOptions, BrokeredBackend, CampaignSpec, SubmitError};
use avf_ga::GaParams;
use avf_inject::{CampaignConfig, FaultModel, GoldenMode, LocalBackend, PruneMode};
use avf_isa::Program;
use avf_service::{serve, spawn_metrics, AuthKey, RemoteBackend, ServeOptions};
use avf_sim::MachineConfig;
use avf_stressmark::cli::{bool_flag, value_flag, Args, FlagSpec};
use avf_stressmark::{
    fig3, fig4, fig5, fig6, fig7, fig8, fig9, generate_stressmark, injection_vs_ace_on,
    instantaneous_qs_bound, instantaneous_qs_bound_general, raw_sum_core, run_suite, table3,
    ExperimentConfig, Fitness, KnobSettings, SearchBackend, SearchConfig,
};

const SEARCH_FLAGS: &[FlagSpec] = &[
    value_flag("rates"),
    value_flag("machine"),
    value_flag("population"),
    value_flag("generations"),
    value_flag("eval"),
    value_flag("final"),
    value_flag("seed"),
    value_flag("threads"),
    value_flag("workers"),
    value_flag("broker"),
    value_flag("tenant"),
    value_flag("auth-key-file"),
];

const SUITE_FLAGS: &[FlagSpec] = &[
    value_flag("rates"),
    value_flag("machine"),
    value_flag("instructions"),
    bool_flag("tsv"),
];

const FIG_FLAGS: &[FlagSpec] = &[bool_flag("smoke")];

const BOUNDS_FLAGS: &[FlagSpec] = &[value_flag("machine")];

const VALIDATE_FLAGS: &[FlagSpec] = &[
    value_flag("machine"),
    value_flag("injections"),
    value_flag("seed"),
    value_flag("instructions"),
    value_flag("threads"),
    value_flag("ci-target"),
    value_flag("batch"),
    value_flag("checkpoint-interval"),
    value_flag("workers"),
    value_flag("golden"),
    value_flag("fault-model"),
    value_flag("prune"),
    value_flag("broker"),
    value_flag("tenant"),
    value_flag("auth-key-file"),
];

const SERVE_FLAGS: &[FlagSpec] = &[
    value_flag("listen"),
    value_flag("threads"),
    value_flag("die-mid-batch"),
    value_flag("auth-key-file"),
    value_flag("metrics"),
];

const BROKER_FLAGS: &[FlagSpec] = &[
    value_flag("listen"),
    value_flag("workers"),
    value_flag("store"),
    value_flag("auth-key-file"),
    value_flag("metrics"),
    value_flag("max-running"),
    value_flag("per-tenant-pending"),
    value_flag("max-pending"),
    value_flag("quantum"),
];

const SUBMIT_FLAGS: &[FlagSpec] = &[
    value_flag("broker"),
    value_flag("tenant"),
    value_flag("auth-key-file"),
    value_flag("program"),
    value_flag("machine"),
    value_flag("injections"),
    value_flag("seed"),
    value_flag("instructions"),
    value_flag("ci-target"),
    value_flag("batch"),
    value_flag("checkpoint-interval"),
    value_flag("fault-model"),
    value_flag("prune"),
    bool_flag("detach"),
];

const ATTACH_FLAGS: &[FlagSpec] = &[
    value_flag("broker"),
    value_flag("tenant"),
    value_flag("auth-key-file"),
    value_flag("id"),
];

fn rates_of(args: &Args) -> Result<FaultRates, String> {
    match args.flag("rates").unwrap_or("baseline") {
        "baseline" => Ok(FaultRates::baseline()),
        "rhc" => Ok(FaultRates::rhc()),
        "edr" => Ok(FaultRates::edr()),
        other => Err(format!(
            "unknown fault-rate table `{other}` (baseline|rhc|edr)"
        )),
    }
}

fn machine_of(args: &Args) -> Result<MachineConfig, String> {
    match args.flag("machine").unwrap_or("baseline") {
        "baseline" => Ok(MachineConfig::baseline()),
        "config-a" => Ok(MachineConfig::config_a()),
        other => Err(format!("unknown machine `{other}` (baseline|config-a)")),
    }
}

/// Loads the shared frame-authentication key named by
/// `--auth-key-file`, if the flag is present.
fn auth_key_of(args: &Args) -> Result<Option<AuthKey>, String> {
    match args.flag("auth-key-file") {
        None => Ok(None),
        Some(path) => AuthKey::load(std::path::Path::new(path)).map(Some),
    }
}

/// The tenant name for broker-facing commands: `--tenant`, falling
/// back to the login user so ad-hoc runs still get a stable lane.
fn tenant_of(args: &Args) -> String {
    args.flag("tenant")
        .map(str::to_owned)
        .unwrap_or_else(|| std::env::var("USER").unwrap_or_else(|_| "default".to_owned()))
}

fn cmd_search(args: &Args) -> Result<(), String> {
    let rates = rates_of(args)?;
    let machine = machine_of(args)?;
    let mut config = SearchConfig::quick(machine, Fitness::overall(rates.clone()));
    config.ga = GaParams {
        population: args.parse_u64("population", 16).map_err(|e| e.0)? as usize,
        generations: args.parse_u64("generations", 24).map_err(|e| e.0)? as usize,
        seed: args
            .parse_u64("seed", GaParams::quick().seed)
            .map_err(|e| e.0)?,
        ..GaParams::quick()
    };
    config.eval_instructions = args.parse_u64("eval", 120_000).map_err(|e| e.0)?;
    config.final_instructions = args.parse_u64("final", 2_000_000).map_err(|e| e.0)?;

    let auth = auth_key_of(args)?;
    config.backend = if let Some(broker) = args.flag("broker") {
        if args.has("workers") {
            return Err(
                "--broker and --workers are mutually exclusive; the broker owns the \
                 worker fleet, pass --workers to the `broker` process instead"
                    .to_owned(),
            );
        }
        if args.has("threads") {
            return Err(
                "--threads selects local worker threads and has no effect with \
                 --broker; set --threads on each `serve` process instead"
                    .to_owned(),
            );
        }
        let tenant = tenant_of(args);
        eprintln!("evaluating generations through broker {broker} as tenant `{tenant}`...");
        SearchBackend::Broker {
            addr: broker.to_owned(),
            tenant,
            auth,
        }
    } else if let Some(list) = args.flag("workers") {
        if args.has("threads") {
            // Accepting the flag but letting it do nothing would be
            // the exact silent-no-effect failure the strict parser
            // exists to prevent.
            return Err(
                "--threads selects local worker threads and has no effect with \
                 --workers; set --threads on each `serve` process instead"
                    .to_owned(),
            );
        }
        let addrs: Vec<String> = list
            .split(',')
            .map(str::trim)
            .filter(|a| !a.is_empty())
            .map(str::to_owned)
            .collect();
        if addrs.is_empty() {
            return Err("--workers expects a comma-separated list of host:port".to_owned());
        }
        eprintln!(
            "evaluating generations on {} remote worker(s)...",
            addrs.len()
        );
        SearchBackend::Workers { addrs, auth }
    } else {
        if auth.is_some() {
            return Err(
                "--auth-key-file authenticates worker/broker connections and has no \
                 effect on a local search; pass --workers or --broker"
                    .to_owned(),
            );
        }
        SearchBackend::Local {
            threads: args.parse_u64("threads", 0).map_err(|e| e.0)? as usize,
        }
    };

    eprintln!(
        "searching ({} rates, {} x {} GA)...",
        rates.name(),
        config.ga.population,
        config.ga.generations
    );
    let outcome =
        generate_stressmark(&config).map_err(|e| format!("search backend failed: {e}"))?;
    println!("knob settings:");
    print!("{}", KnobSettings::of(&outcome));
    let ser = outcome.result.report.ser(&rates);
    print!("{ser}");
    println!(
        "dead fraction: {:.4}",
        outcome.result.report.deadness().dead_fraction()
    );
    for g in &outcome.ga.history {
        println!(
            "gen\t{}\t{:.5}\t{:.5}{}",
            g.generation,
            g.mean,
            g.best,
            if g.cataclysm { "\tcataclysm" } else { "" }
        );
    }
    Ok(())
}

fn cmd_suite(args: &Args) -> Result<(), String> {
    let rates = rates_of(args)?;
    let machine = machine_of(args)?;
    let instructions = args.parse_u64("instructions", 2_000_000).map_err(|e| e.0)?;
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let runs = run_suite(&machine, &avf_workloads::all(), instructions, threads);
    if args.has("tsv") {
        println!("name\tqs\tqs_rf\tdl1_dtlb\tl2\tipc");
        for (w, r) in &runs {
            let ser = r.report.ser(&rates);
            println!(
                "{}\t{:.6}\t{:.6}\t{:.6}\t{:.6}\t{:.3}",
                w.name(),
                ser.qs(),
                ser.qs_rf(),
                ser.dl1_dtlb(),
                ser.l2(),
                r.stats.ipc()
            );
        }
    } else {
        println!(
            "{:<18} {:>8} {:>8} {:>10} {:>8} {:>6}",
            "program", "QS", "QS+RF", "DL1+DTLB", "L2", "IPC"
        );
        for (w, r) in &runs {
            let ser = r.report.ser(&rates);
            println!(
                "{:<18} {:>8.3} {:>8.3} {:>10.3} {:>8.3} {:>6.2}",
                w.name(),
                ser.qs(),
                ser.qs_rf(),
                ser.dl1_dtlb(),
                ser.l2(),
                r.stats.ipc()
            );
        }
    }
    Ok(())
}

fn cmd_fig(args: &Args) -> Result<(), String> {
    let which = args
        .positional()
        .first()
        .ok_or("fig requires an argument: 3|4|5|6|7|8|9|table3")?;
    let cfg = if args.has("smoke") {
        ExperimentConfig::smoke()
    } else {
        ExperimentConfig::standard()
    };
    match which.as_str() {
        "3" => println!("{}", fig3(&cfg)),
        "4" => println!("{}", fig4(&cfg)),
        "5" => println!("{}", fig5(&cfg)),
        "6" => {
            for t in fig6(&cfg) {
                println!("{t}");
            }
        }
        "7" => {
            for t in fig7(&cfg) {
                println!("{t}");
            }
        }
        "8" => println!("{}", fig8(&cfg)),
        "9" => println!("{}", fig9(&cfg)),
        "table3" => println!("{}", table3(&cfg)),
        other => return Err(format!("unknown figure `{other}`")),
    }
    Ok(())
}

fn cmd_bounds(args: &Args) -> Result<(), String> {
    let machine = machine_of(args)?;
    let sizes = machine.structure_sizes();
    println!(
        "closed-form core bounds for `{}` (units/bit):",
        machine.name
    );
    println!(
        "{:<10} {:>10} {:>10} {:>10}",
        "rates", "raw sum", "inst (QS)", "inst gen."
    );
    for rates in [FaultRates::baseline(), FaultRates::rhc(), FaultRates::edr()] {
        println!(
            "{:<10} {:>10.3} {:>10.3} {:>10.3}",
            rates.name(),
            raw_sum_core(&sizes, &rates),
            instantaneous_qs_bound(&sizes, &rates),
            instantaneous_qs_bound_general(&sizes, &rates),
        );
    }
    Ok(())
}

fn cmd_validate(args: &Args) -> Result<(), String> {
    let machine = machine_of(args)?;
    let golden_mode = match args.flag("golden").unwrap_or("worker") {
        "worker" => GoldenMode::Worker,
        "driver" => GoldenMode::Driver,
        other => return Err(format!("unknown golden mode `{other}` (worker|driver)")),
    };
    let fault_model = {
        let spelled = args.flag("fault-model").unwrap_or("replay");
        FaultModel::parse(spelled)
            .ok_or_else(|| format!("unknown fault model `{spelled}` (trap|replay)"))?
    };
    let prune = {
        let spelled = args.flag("prune").unwrap_or("off");
        PruneMode::parse(spelled)
            .ok_or_else(|| format!("unknown prune mode `{spelled}` (off|on|audit)"))?
    };
    let config = CampaignConfig {
        injections: args.parse_u64("injections", 1000).map_err(|e| e.0)?,
        seed: args.parse_u64("seed", 42).map_err(|e| e.0)?,
        threads: args.parse_u64("threads", 0).map_err(|e| e.0)? as usize,
        instr_budget: args.parse_u64("instructions", 30_000).map_err(|e| e.0)?,
        ci_target: args.parse_f64_opt("ci-target").map_err(|e| e.0)?,
        batch_size: args.parse_u64("batch", 128).map_err(|e| e.0)?.max(1),
        checkpoint_interval: args.parse_u64("checkpoint-interval", 0).map_err(|e| e.0)?,
        golden_mode,
        fault_model,
        prune,
        ..CampaignConfig::default()
    };
    match config.ci_target {
        Some(target) => eprintln!(
            "cross-validating ACE AVF by adaptive statistical fault injection \
             (CI target ±{target}, cap {} injections/program, {} fault model, seed {})...",
            config.injections, config.fault_model, config.seed
        ),
        None => eprintln!(
            "cross-validating ACE AVF by statistical fault injection \
             ({} injections/program, {} fault model, seed {})...",
            config.injections, config.fault_model, config.seed
        ),
    }
    let auth = auth_key_of(args)?;
    let validation = if let Some(broker) = args.flag("broker") {
        if args.has("workers") {
            return Err(
                "--broker and --workers are mutually exclusive; the broker owns the \
                 worker fleet, pass --workers to the `broker` process instead"
                    .to_owned(),
            );
        }
        if args.has("threads") {
            return Err(
                "--threads selects local worker threads and has no effect with \
                 --broker; set --threads on each `serve` process instead"
                    .to_owned(),
            );
        }
        if golden_mode != GoldenMode::Worker {
            return Err(
                "--broker requires --golden worker: the broker delegates golden \
                 runs to its fleet"
                    .to_owned(),
            );
        }
        let tenant = tenant_of(args);
        eprintln!("dispatching campaigns through broker {broker} as tenant `{tenant}`...");
        let backend = BrokeredBackend::connect(broker, &tenant, auth)
            .map_err(|e| format!("cannot reach broker `{broker}`: {e}"))?;
        injection_vs_ace_on(&machine, &config, &backend)
    } else {
        match args.flag("workers") {
            None => injection_vs_ace_on(&machine, &config, &LocalBackend::new(config.threads)),
            Some(list) => {
                if args.has("threads") {
                    // Accepting the flag but letting it do nothing would be
                    // the exact silent-no-effect failure the strict parser
                    // exists to prevent.
                    return Err(
                        "--threads selects local worker threads and has no effect with \
                     --workers; set --threads on each `serve` process instead"
                            .to_owned(),
                    );
                }
                let addrs: Vec<String> = list
                    .split(',')
                    .map(str::trim)
                    .filter(|a| !a.is_empty())
                    .map(str::to_owned)
                    .collect();
                if addrs.is_empty() {
                    return Err("--workers expects a comma-separated list of host:port".to_owned());
                }
                eprintln!(
                    "dispatching campaigns to {} remote worker(s)...",
                    addrs.len()
                );
                let backend = match auth {
                    Some(key) => RemoteBackend::with_auth(addrs, key),
                    None => RemoteBackend::new(addrs),
                };
                injection_vs_ace_on(&machine, &config, &backend)
            }
        }
    }
    .map_err(|e| format!("campaign backend failed: {e}"))?;
    print!("{validation}");
    if validation.all_consistent() {
        Ok(())
    } else {
        Err("injection measured more vulnerability than the ACE analysis claims".to_owned())
    }
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    let listen = args
        .flag("listen")
        .ok_or("serve requires --listen host:port")?;
    let threads = args.parse_u64("threads", 0).map_err(|e| e.0)? as usize;
    let die_mid_batch = match args.flag("die-mid-batch") {
        None => None,
        Some(_) => Some(args.parse_u64("die-mid-batch", 0).map_err(|e| e.0)?),
    };
    if let Some(n) = die_mid_batch {
        eprintln!(
            "serve: FAULT INJECTION ARMED — every connection aborts midway through \
             its batch {n} (resilience testing only)"
        );
    }
    let auth = auth_key_of(args)?;
    if auth.is_some() {
        eprintln!("serve: frame authentication required on every connection");
    }
    let listener = std::net::TcpListener::bind(listen)
        .map_err(|e| format!("cannot listen on `{listen}`: {e}"))?;
    eprintln!(
        "campaign service listening on {} ({} worker thread(s) per session)",
        listener
            .local_addr()
            .map_or_else(|_| listen.to_owned(), |a| a.to_string()),
        if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        }
    );
    let opts = ServeOptions {
        threads,
        die_mid_batch,
        auth,
        ..ServeOptions::default()
    };
    if let Some(metrics) = args.flag("metrics") {
        let stats = opts.stats.clone();
        let cache = opts.cache.clone();
        let bound = spawn_metrics(metrics, move || stats.render(&cache))
            .map_err(|e| format!("cannot serve metrics on `{metrics}`: {e}"))?;
        eprintln!("metrics endpoint on http://{bound}/metrics");
    }
    serve(listener, &opts).map_err(|e| format!("accept loop failed: {e}"))
}

fn cmd_broker(args: &Args) -> Result<(), String> {
    let listen = args
        .flag("listen")
        .ok_or("broker requires --listen host:port")?;
    let workers: Vec<String> = args
        .flag("workers")
        .ok_or("broker requires --workers host:port,host:port,...")?
        .split(',')
        .map(str::trim)
        .filter(|a| !a.is_empty())
        .map(str::to_owned)
        .collect();
    if workers.is_empty() {
        return Err("--workers expects a comma-separated list of host:port".to_owned());
    }
    let defaults = BrokerOptions::default();
    let opts = BrokerOptions {
        workers,
        auth: auth_key_of(args)?,
        max_running: args
            .parse_u64("max-running", defaults.max_running as u64)
            .map_err(|e| e.0)? as usize,
        per_tenant_pending: args
            .parse_u64("per-tenant-pending", defaults.per_tenant_pending as u64)
            .map_err(|e| e.0)? as usize,
        max_pending: args
            .parse_u64("max-pending", defaults.max_pending as u64)
            .map_err(|e| e.0)? as usize,
        quantum: args
            .parse_u64("quantum", defaults.quantum)
            .map_err(|e| e.0)?,
        store_path: args
            .flag("store")
            .map_or(defaults.store_path, std::path::PathBuf::from),
    };
    if opts.auth.is_some() {
        eprintln!("broker: frame authentication required on every driver connection");
    }
    let listener = std::net::TcpListener::bind(listen)
        .map_err(|e| format!("cannot listen on `{listen}`: {e}"))?;
    eprintln!(
        "campaign broker listening on {} fronting {} worker(s), log at {}",
        listener
            .local_addr()
            .map_or_else(|_| listen.to_owned(), |a| a.to_string()),
        opts.workers.len(),
        opts.store_path.display()
    );
    let broker = Broker::start(opts).map_err(|e| format!("cannot start broker: {e}"))?;
    if let Some(metrics) = args.flag("metrics") {
        let bound = spawn_metrics(metrics, broker.metrics_renderer())
            .map_err(|e| format!("cannot serve metrics on `{metrics}`: {e}"))?;
        eprintln!("metrics endpoint on http://{bound}/metrics");
    }
    broker
        .listen(listener)
        .map_err(|e| format!("accept loop failed: {e}"))
}

/// Builds the spec a `submit` run ships to the broker: the shared
/// campaign knobs plus a program picked by name.
fn spec_of(args: &Args) -> Result<CampaignSpec, String> {
    let machine = machine_of(args)?;
    let fault_model = {
        let spelled = args.flag("fault-model").unwrap_or("replay");
        FaultModel::parse(spelled)
            .ok_or_else(|| format!("unknown fault model `{spelled}` (trap|replay)"))?
    };
    let prune = {
        let spelled = args.flag("prune").unwrap_or("off");
        PruneMode::parse(spelled)
            .ok_or_else(|| format!("unknown prune mode `{spelled}` (off|on|audit)"))?
    };
    let program: Program = match args.flag("program").unwrap_or("stressmark") {
        "stressmark" => {
            avf_codegen::generate(
                &avf_codegen::Knobs::paper_baseline(),
                &avf_stressmark::target_params(&machine),
            )
            .program
        }
        name => avf_workloads::by_name(name)
            .ok_or_else(|| format!("unknown program `{name}` (stressmark or a suite workload)"))?
            .build(),
    };
    let config = CampaignConfig {
        injections: args.parse_u64("injections", 1000).map_err(|e| e.0)?,
        seed: args.parse_u64("seed", 42).map_err(|e| e.0)?,
        instr_budget: args.parse_u64("instructions", 30_000).map_err(|e| e.0)?,
        ci_target: args.parse_f64_opt("ci-target").map_err(|e| e.0)?,
        batch_size: args.parse_u64("batch", 128).map_err(|e| e.0)?.max(1),
        checkpoint_interval: args.parse_u64("checkpoint-interval", 0).map_err(|e| e.0)?,
        golden_mode: GoldenMode::Worker,
        fault_model,
        prune,
        ..CampaignConfig::default()
    };
    Ok(CampaignSpec::from_config(machine, program, &config))
}

fn wait_and_print(client: &mut BrokerClient, id: u64) -> Result<(), String> {
    let report = client
        .wait_with(id, |phase, trials_done| {
            eprintln!("campaign {id}: {phase}, {trials_done} trial(s) dispatched");
        })
        .map_err(|e| match e {
            SubmitError::Rejected { reason, detail } => {
                format!("campaign {id} rejected ({reason}): {detail}")
            }
            SubmitError::Backend(e) => format!("campaign {id} failed: {e}"),
        })?;
    print!("{report}");
    Ok(())
}

fn cmd_submit(args: &Args) -> Result<(), String> {
    let broker = args
        .flag("broker")
        .ok_or("submit requires --broker host:port")?;
    let spec = spec_of(args)?;
    let tenant = tenant_of(args);
    let mut client = BrokerClient::connect(broker, &tenant, auth_key_of(args)?)
        .map_err(|e| format!("cannot reach broker `{broker}`: {e}"))?;
    let id = client.submit(&spec).map_err(|e| match e {
        SubmitError::Rejected { reason, detail } => format!("rejected ({reason}): {detail}"),
        SubmitError::Backend(e) => format!("submit failed: {e}"),
    })?;
    if args.has("detach") {
        // The id is the durable handle: print it alone on stdout so
        // scripts can capture it and `attach` later.
        println!("{id}");
        return Ok(());
    }
    eprintln!("campaign {id} accepted (tenant `{tenant}`); waiting...");
    wait_and_print(&mut client, id)
}

fn cmd_attach(args: &Args) -> Result<(), String> {
    let broker = args
        .flag("broker")
        .ok_or("attach requires --broker host:port")?;
    let id = args.parse_u64("id", u64::MAX).map_err(|e| e.0)?;
    if id == u64::MAX {
        return Err("attach requires --id N (as printed by `submit --detach`)".to_owned());
    }
    let tenant = tenant_of(args);
    let mut client = BrokerClient::connect(broker, &tenant, auth_key_of(args)?)
        .map_err(|e| format!("cannot reach broker `{broker}`: {e}"))?;
    client
        .attach(id)
        .map_err(|e| format!("attach failed: {e}"))?;
    wait_and_print(&mut client, id)
}

const USAGE: &str = "\
usage: avf-stressmark <command> [options]

commands:
  search    generate a stressmark via the GA (options: --rates, --machine,
            --population, --generations, --eval, --final, --seed;
            evaluation backends: --threads N scores generations on a
            local thread pool [default, 0 = all cores], --workers
            host:port,... fans each generation out to `serve` processes
            — workers code-generate and simulate candidates from their
            genomes, memoize scores in a genome-keyed cache, and a
            worker's unacknowledged individuals re-dispatch to
            survivors if it dies mid-generation; --broker host:port
            [--tenant NAME] routes generations through the campaign
            broker under fair scheduling; --auth-key-file F
            authenticates worker/broker frames; results are
            bit-identical across all backends at a fixed --seed)
  suite     run the 33-program proxy suite (options: --rates, --machine,
            --instructions, --tsv)
  fig       regenerate a paper figure: fig <3|4|5|6|7|8|9|table3> [--smoke]
  bounds    print the closed-form worst-case bounds
  validate  cross-validate ACE AVF with parallel statistical fault
            injection on the stressmark + 3 workload profiles (options:
            --machine, --injections, --seed, --instructions, --threads;
            adaptive sequential sampling: --ci-target <half-width in
            (0, 0.5)> stops each campaign once every structure's 95% CI
            is that tight, --injections then caps the trials, --batch
            sets the per-batch size, --checkpoint-interval the
            golden-run checkpoint spacing in cycles; distributed
            execution: --workers host:port,... fans trial batches out
            to `serve` processes instead of local threads, re-dispatching
            a worker's trials to survivors if its connection dies
            mid-batch; --golden worker|driver picks who runs the golden
            pass — workers in parallel [default, digests cross-checked]
            or the driver, shipping checkpoints behind the content-hash
            cache handshake; --fault-model replay|trap picks how
            ROB/IQ/LQ/SQ control/tag flips resolve — the micro-op
            replay oracle [default: corrupted entries re-decode and
            re-execute, outcomes classified architecturally] or the
            coarse control-corruption-is-DUE trap model; --prune
            off|on|audit gates the pre-campaign masked-site classifier —
            `on` skips provably-masked (structure, bit, cycle) strata
            and credits them as exact zeros in a stratified estimator,
            `audit` additionally injects into a deterministic sample of
            pruned sites and hard-fails on any non-masked outcome)
  serve     run a long-lived campaign worker: accepts (program, machine,
            store-hash) jobs over TCP, resolves checkpoint stores
            through a bounded LRU cache (HAVE/NEED handshake) or its own
            golden run, and streams per-trial outcomes back (options:
            --listen host:port, --threads; --auth-key-file F requires a
            valid frame tag on every connection; --metrics host:port
            serves plaintext session/cache counters over HTTP;
            --die-mid-batch N aborts each connection midway through
            batch N — resilience testing only)
  broker    run the multi-tenant campaign broker fronting a `serve`
            fleet: admits specs under per-tenant quotas, schedules them
            deficit-round-robin, journals every acceptance and outcome
            to an append-only log so campaigns survive driver and
            broker restarts, and relays interactive `validate --broker`
            sessions (options: --listen host:port, --workers
            host:port,..., --store F, --auth-key-file F, --metrics
            host:port, --max-running, --per-tenant-pending,
            --max-pending, --quantum)
  submit    queue one campaign on a broker and wait for its report
            (options: --broker host:port, --tenant NAME,
            --auth-key-file F, --program stressmark|<suite workload>,
            plus the validate campaign knobs: --machine, --injections,
            --seed, --instructions, --ci-target, --batch,
            --checkpoint-interval, --fault-model, --prune; --detach
            prints the campaign id and exits immediately)
  attach    re-attach to a queued, running, or finished campaign by id
            and print its report (options: --broker host:port,
            --tenant NAME, --auth-key-file F, --id N)

validate also accepts --broker host:port [--tenant NAME] to route its
campaigns through a broker instead of --workers or local threads.

flags are strict: unknown --flags are errors, not ignored.
";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = argv.first().map(String::as_str) else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let spec: &[FlagSpec] = match command {
        "search" => SEARCH_FLAGS,
        "suite" => SUITE_FLAGS,
        "fig" => FIG_FLAGS,
        "bounds" => BOUNDS_FLAGS,
        "validate" => VALIDATE_FLAGS,
        "serve" => SERVE_FLAGS,
        "broker" => BROKER_FLAGS,
        "submit" => SUBMIT_FLAGS,
        "attach" => ATTACH_FLAGS,
        _ => {
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match Args::parse(&argv[1..], spec) {
        Err(e) => Err(e.to_string()),
        Ok(args) => match command {
            "search" => cmd_search(&args),
            "suite" => cmd_suite(&args),
            "fig" => cmd_fig(&args),
            "bounds" => cmd_bounds(&args),
            "validate" => cmd_validate(&args),
            "serve" => cmd_serve(&args),
            "broker" => cmd_broker(&args),
            "submit" => cmd_submit(&args),
            "attach" => cmd_attach(&args),
            _ => unreachable!("command validated above"),
        },
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(tokens: &[&str]) -> Vec<String> {
        tokens.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn worker_typo_suggests_workers() {
        // The motivating regression: `search --worker host:1234` must
        // not silently fall back to a local search.
        let err = Args::parse(&argv(&["--worker", "host:1234"]), SEARCH_FLAGS).unwrap_err();
        assert!(err.0.contains("unknown flag `--worker`"), "{err}");
        assert!(err.0.contains("did you mean `--workers`"), "{err}");
    }

    #[test]
    fn workers_and_threads_conflict_is_a_hard_error() {
        let args = Args::parse(
            &argv(&["--workers", "host:1234", "--threads", "4"]),
            SEARCH_FLAGS,
        )
        .unwrap();
        let err = cmd_search(&args).unwrap_err();
        assert!(
            err.contains("--threads selects local worker threads"),
            "{err}"
        );
    }

    #[test]
    fn broker_and_workers_conflict_is_a_hard_error() {
        let args = Args::parse(
            &argv(&["--broker", "host:1", "--workers", "host:2"]),
            SEARCH_FLAGS,
        )
        .unwrap();
        let err = cmd_search(&args).unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
    }
}
