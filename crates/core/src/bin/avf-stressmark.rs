//! Command-line interface to the AVF stressmark methodology.
//!
//! ```text
//! avf-stressmark search   [--rates baseline|rhc|edr] [--machine baseline|config-a]
//!                         [--population N] [--generations N] [--eval N] [--final N] [--seed N]
//! avf-stressmark suite    [--rates ...] [--machine ...] [--instructions N] [--tsv]
//! avf-stressmark fig      <3|4|5|6|7|8|9|table3> [--smoke]
//! avf-stressmark bounds   [--machine ...]
//! avf-stressmark validate [--machine ...] [--injections N] [--seed N]
//!                         [--instructions N] [--threads N] [--ci-target F]
//!                         [--batch N] [--checkpoint-interval N]
//!                         [--workers host:port,host:port,...]
//!                         [--prune off|on|audit]
//! avf-stressmark serve    --listen host:port [--threads N]
//! ```
//!
//! Flags are strict: an unrecognized `--flag` is an error (with a
//! "did you mean" hint), never silently ignored.

use std::process::ExitCode;

use avf_ace::FaultRates;
use avf_ga::GaParams;
use avf_inject::{CampaignConfig, FaultModel, GoldenMode, LocalBackend, PruneMode};
use avf_service::{serve, RemoteBackend, ServeOptions};
use avf_sim::MachineConfig;
use avf_stressmark::cli::{bool_flag, value_flag, Args, FlagSpec};
use avf_stressmark::{
    fig3, fig4, fig5, fig6, fig7, fig8, fig9, generate_stressmark, injection_vs_ace_on,
    instantaneous_qs_bound, instantaneous_qs_bound_general, raw_sum_core, run_suite, table3,
    ExperimentConfig, Fitness, KnobSettings, SearchConfig,
};

const SEARCH_FLAGS: &[FlagSpec] = &[
    value_flag("rates"),
    value_flag("machine"),
    value_flag("population"),
    value_flag("generations"),
    value_flag("eval"),
    value_flag("final"),
    value_flag("seed"),
];

const SUITE_FLAGS: &[FlagSpec] = &[
    value_flag("rates"),
    value_flag("machine"),
    value_flag("instructions"),
    bool_flag("tsv"),
];

const FIG_FLAGS: &[FlagSpec] = &[bool_flag("smoke")];

const BOUNDS_FLAGS: &[FlagSpec] = &[value_flag("machine")];

const VALIDATE_FLAGS: &[FlagSpec] = &[
    value_flag("machine"),
    value_flag("injections"),
    value_flag("seed"),
    value_flag("instructions"),
    value_flag("threads"),
    value_flag("ci-target"),
    value_flag("batch"),
    value_flag("checkpoint-interval"),
    value_flag("workers"),
    value_flag("golden"),
    value_flag("fault-model"),
    value_flag("prune"),
];

const SERVE_FLAGS: &[FlagSpec] = &[
    value_flag("listen"),
    value_flag("threads"),
    value_flag("die-mid-batch"),
];

fn rates_of(args: &Args) -> Result<FaultRates, String> {
    match args.flag("rates").unwrap_or("baseline") {
        "baseline" => Ok(FaultRates::baseline()),
        "rhc" => Ok(FaultRates::rhc()),
        "edr" => Ok(FaultRates::edr()),
        other => Err(format!(
            "unknown fault-rate table `{other}` (baseline|rhc|edr)"
        )),
    }
}

fn machine_of(args: &Args) -> Result<MachineConfig, String> {
    match args.flag("machine").unwrap_or("baseline") {
        "baseline" => Ok(MachineConfig::baseline()),
        "config-a" => Ok(MachineConfig::config_a()),
        other => Err(format!("unknown machine `{other}` (baseline|config-a)")),
    }
}

fn cmd_search(args: &Args) -> Result<(), String> {
    let rates = rates_of(args)?;
    let machine = machine_of(args)?;
    let mut config = SearchConfig::quick(machine, Fitness::overall(rates.clone()));
    config.ga = GaParams {
        population: args.parse_u64("population", 16).map_err(|e| e.0)? as usize,
        generations: args.parse_u64("generations", 24).map_err(|e| e.0)? as usize,
        seed: args
            .parse_u64("seed", GaParams::quick().seed)
            .map_err(|e| e.0)?,
        ..GaParams::quick()
    };
    config.eval_instructions = args.parse_u64("eval", 120_000).map_err(|e| e.0)?;
    config.final_instructions = args.parse_u64("final", 2_000_000).map_err(|e| e.0)?;

    eprintln!(
        "searching ({} rates, {} x {} GA)...",
        rates.name(),
        config.ga.population,
        config.ga.generations
    );
    let outcome = generate_stressmark(&config);
    println!("knob settings:");
    print!("{}", KnobSettings::of(&outcome));
    let ser = outcome.result.report.ser(&rates);
    print!("{ser}");
    println!(
        "dead fraction: {:.4}",
        outcome.result.report.deadness().dead_fraction()
    );
    for g in &outcome.ga.history {
        println!(
            "gen\t{}\t{:.5}\t{:.5}{}",
            g.generation,
            g.mean,
            g.best,
            if g.cataclysm { "\tcataclysm" } else { "" }
        );
    }
    Ok(())
}

fn cmd_suite(args: &Args) -> Result<(), String> {
    let rates = rates_of(args)?;
    let machine = machine_of(args)?;
    let instructions = args.parse_u64("instructions", 2_000_000).map_err(|e| e.0)?;
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let runs = run_suite(&machine, &avf_workloads::all(), instructions, threads);
    if args.has("tsv") {
        println!("name\tqs\tqs_rf\tdl1_dtlb\tl2\tipc");
        for (w, r) in &runs {
            let ser = r.report.ser(&rates);
            println!(
                "{}\t{:.6}\t{:.6}\t{:.6}\t{:.6}\t{:.3}",
                w.name(),
                ser.qs(),
                ser.qs_rf(),
                ser.dl1_dtlb(),
                ser.l2(),
                r.stats.ipc()
            );
        }
    } else {
        println!(
            "{:<18} {:>8} {:>8} {:>10} {:>8} {:>6}",
            "program", "QS", "QS+RF", "DL1+DTLB", "L2", "IPC"
        );
        for (w, r) in &runs {
            let ser = r.report.ser(&rates);
            println!(
                "{:<18} {:>8.3} {:>8.3} {:>10.3} {:>8.3} {:>6.2}",
                w.name(),
                ser.qs(),
                ser.qs_rf(),
                ser.dl1_dtlb(),
                ser.l2(),
                r.stats.ipc()
            );
        }
    }
    Ok(())
}

fn cmd_fig(args: &Args) -> Result<(), String> {
    let which = args
        .positional()
        .first()
        .ok_or("fig requires an argument: 3|4|5|6|7|8|9|table3")?;
    let cfg = if args.has("smoke") {
        ExperimentConfig::smoke()
    } else {
        ExperimentConfig::standard()
    };
    match which.as_str() {
        "3" => println!("{}", fig3(&cfg)),
        "4" => println!("{}", fig4(&cfg)),
        "5" => println!("{}", fig5(&cfg)),
        "6" => {
            for t in fig6(&cfg) {
                println!("{t}");
            }
        }
        "7" => {
            for t in fig7(&cfg) {
                println!("{t}");
            }
        }
        "8" => println!("{}", fig8(&cfg)),
        "9" => println!("{}", fig9(&cfg)),
        "table3" => println!("{}", table3(&cfg)),
        other => return Err(format!("unknown figure `{other}`")),
    }
    Ok(())
}

fn cmd_bounds(args: &Args) -> Result<(), String> {
    let machine = machine_of(args)?;
    let sizes = machine.structure_sizes();
    println!(
        "closed-form core bounds for `{}` (units/bit):",
        machine.name
    );
    println!(
        "{:<10} {:>10} {:>10} {:>10}",
        "rates", "raw sum", "inst (QS)", "inst gen."
    );
    for rates in [FaultRates::baseline(), FaultRates::rhc(), FaultRates::edr()] {
        println!(
            "{:<10} {:>10.3} {:>10.3} {:>10.3}",
            rates.name(),
            raw_sum_core(&sizes, &rates),
            instantaneous_qs_bound(&sizes, &rates),
            instantaneous_qs_bound_general(&sizes, &rates),
        );
    }
    Ok(())
}

fn cmd_validate(args: &Args) -> Result<(), String> {
    let machine = machine_of(args)?;
    let golden_mode = match args.flag("golden").unwrap_or("worker") {
        "worker" => GoldenMode::Worker,
        "driver" => GoldenMode::Driver,
        other => return Err(format!("unknown golden mode `{other}` (worker|driver)")),
    };
    let fault_model = {
        let spelled = args.flag("fault-model").unwrap_or("replay");
        FaultModel::parse(spelled)
            .ok_or_else(|| format!("unknown fault model `{spelled}` (trap|replay)"))?
    };
    let prune = {
        let spelled = args.flag("prune").unwrap_or("off");
        PruneMode::parse(spelled)
            .ok_or_else(|| format!("unknown prune mode `{spelled}` (off|on|audit)"))?
    };
    let config = CampaignConfig {
        injections: args.parse_u64("injections", 1000).map_err(|e| e.0)?,
        seed: args.parse_u64("seed", 42).map_err(|e| e.0)?,
        threads: args.parse_u64("threads", 0).map_err(|e| e.0)? as usize,
        instr_budget: args.parse_u64("instructions", 30_000).map_err(|e| e.0)?,
        ci_target: args.parse_f64_opt("ci-target").map_err(|e| e.0)?,
        batch_size: args.parse_u64("batch", 128).map_err(|e| e.0)?.max(1),
        checkpoint_interval: args.parse_u64("checkpoint-interval", 0).map_err(|e| e.0)?,
        golden_mode,
        fault_model,
        prune,
        ..CampaignConfig::default()
    };
    match config.ci_target {
        Some(target) => eprintln!(
            "cross-validating ACE AVF by adaptive statistical fault injection \
             (CI target ±{target}, cap {} injections/program, {} fault model, seed {})...",
            config.injections, config.fault_model, config.seed
        ),
        None => eprintln!(
            "cross-validating ACE AVF by statistical fault injection \
             ({} injections/program, {} fault model, seed {})...",
            config.injections, config.fault_model, config.seed
        ),
    }
    let validation = match args.flag("workers") {
        None => injection_vs_ace_on(&machine, &config, &LocalBackend::new(config.threads)),
        Some(list) => {
            if args.has("threads") {
                // Accepting the flag but letting it do nothing would be
                // the exact silent-no-effect failure the strict parser
                // exists to prevent.
                return Err(
                    "--threads selects local worker threads and has no effect with \
                     --workers; set --threads on each `serve` process instead"
                        .to_owned(),
                );
            }
            let addrs: Vec<String> = list
                .split(',')
                .map(str::trim)
                .filter(|a| !a.is_empty())
                .map(str::to_owned)
                .collect();
            if addrs.is_empty() {
                return Err("--workers expects a comma-separated list of host:port".to_owned());
            }
            eprintln!(
                "dispatching campaigns to {} remote worker(s)...",
                addrs.len()
            );
            injection_vs_ace_on(&machine, &config, &RemoteBackend::new(addrs))
        }
    }
    .map_err(|e| format!("campaign backend failed: {e}"))?;
    print!("{validation}");
    if validation.all_consistent() {
        Ok(())
    } else {
        Err("injection measured more vulnerability than the ACE analysis claims".to_owned())
    }
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    let listen = args
        .flag("listen")
        .ok_or("serve requires --listen host:port")?;
    let threads = args.parse_u64("threads", 0).map_err(|e| e.0)? as usize;
    let die_mid_batch = match args.flag("die-mid-batch") {
        None => None,
        Some(_) => Some(args.parse_u64("die-mid-batch", 0).map_err(|e| e.0)?),
    };
    if let Some(n) = die_mid_batch {
        eprintln!(
            "serve: FAULT INJECTION ARMED — every connection aborts midway through \
             its batch {n} (resilience testing only)"
        );
    }
    let listener = std::net::TcpListener::bind(listen)
        .map_err(|e| format!("cannot listen on `{listen}`: {e}"))?;
    eprintln!(
        "campaign service listening on {} ({} worker thread(s) per session)",
        listener
            .local_addr()
            .map_or_else(|_| listen.to_owned(), |a| a.to_string()),
        if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        }
    );
    serve(
        listener,
        &ServeOptions {
            threads,
            die_mid_batch,
            ..ServeOptions::default()
        },
    )
    .map_err(|e| format!("accept loop failed: {e}"))
}

const USAGE: &str = "\
usage: avf-stressmark <command> [options]

commands:
  search    generate a stressmark via the GA (options: --rates, --machine,
            --population, --generations, --eval, --final, --seed)
  suite     run the 33-program proxy suite (options: --rates, --machine,
            --instructions, --tsv)
  fig       regenerate a paper figure: fig <3|4|5|6|7|8|9|table3> [--smoke]
  bounds    print the closed-form worst-case bounds
  validate  cross-validate ACE AVF with parallel statistical fault
            injection on the stressmark + 3 workload profiles (options:
            --machine, --injections, --seed, --instructions, --threads;
            adaptive sequential sampling: --ci-target <half-width in
            (0, 0.5)> stops each campaign once every structure's 95% CI
            is that tight, --injections then caps the trials, --batch
            sets the per-batch size, --checkpoint-interval the
            golden-run checkpoint spacing in cycles; distributed
            execution: --workers host:port,... fans trial batches out
            to `serve` processes instead of local threads, re-dispatching
            a worker's trials to survivors if its connection dies
            mid-batch; --golden worker|driver picks who runs the golden
            pass — workers in parallel [default, digests cross-checked]
            or the driver, shipping checkpoints behind the content-hash
            cache handshake; --fault-model replay|trap picks how
            ROB/IQ/LQ/SQ control/tag flips resolve — the micro-op
            replay oracle [default: corrupted entries re-decode and
            re-execute, outcomes classified architecturally] or the
            coarse control-corruption-is-DUE trap model; --prune
            off|on|audit gates the pre-campaign masked-site classifier —
            `on` skips provably-masked (structure, bit, cycle) strata
            and credits them as exact zeros in a stratified estimator,
            `audit` additionally injects into a deterministic sample of
            pruned sites and hard-fails on any non-masked outcome)
  serve     run a long-lived campaign worker: accepts (program, machine,
            store-hash) jobs over TCP, resolves checkpoint stores
            through a bounded LRU cache (HAVE/NEED handshake) or its own
            golden run, and streams per-trial outcomes back (options:
            --listen host:port, --threads; --die-mid-batch N aborts each
            connection midway through batch N — resilience testing only)

flags are strict: unknown --flags are errors, not ignored.
";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = argv.first().map(String::as_str) else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let spec: &[FlagSpec] = match command {
        "search" => SEARCH_FLAGS,
        "suite" => SUITE_FLAGS,
        "fig" => FIG_FLAGS,
        "bounds" => BOUNDS_FLAGS,
        "validate" => VALIDATE_FLAGS,
        "serve" => SERVE_FLAGS,
        _ => {
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match Args::parse(&argv[1..], spec) {
        Err(e) => Err(e.to_string()),
        Ok(args) => match command {
            "search" => cmd_search(&args),
            "suite" => cmd_suite(&args),
            "fig" => cmd_fig(&args),
            "bounds" => cmd_bounds(&args),
            "validate" => cmd_validate(&args),
            "serve" => cmd_serve(&args),
            _ => unreachable!("command validated above"),
        },
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
