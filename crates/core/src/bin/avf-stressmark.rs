//! Command-line interface to the AVF stressmark methodology.
//!
//! ```text
//! avf-stressmark search   [--rates baseline|rhc|edr] [--machine baseline|config-a]
//!                         [--population N] [--generations N] [--eval N] [--final N] [--seed N]
//! avf-stressmark suite    [--rates ...] [--machine ...] [--instructions N] [--tsv]
//! avf-stressmark fig      <3|4|5|6|7|8|9|table3> [--smoke]
//! avf-stressmark bounds   [--machine ...]
//! avf-stressmark validate [--machine ...] [--injections N] [--seed N]
//!                         [--instructions N] [--threads N] [--ci-target F]
//!                         [--batch N] [--checkpoint-interval N]
//! ```

use std::process::ExitCode;

use avf_ace::FaultRates;
use avf_ga::GaParams;
use avf_inject::CampaignConfig;
use avf_sim::MachineConfig;
use avf_stressmark::{
    fig3, fig4, fig5, fig6, fig7, fig8, fig9, generate_stressmark, injection_vs_ace,
    instantaneous_qs_bound, instantaneous_qs_bound_general, raw_sum_core, run_suite, table3,
    ExperimentConfig, Fitness, KnobSettings, SearchConfig,
};

struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(argv: &[String]) -> Args {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            if let Some(name) = a.strip_prefix("--") {
                let value = argv.get(i + 1).filter(|v| !v.starts_with("--")).cloned();
                if value.is_some() {
                    i += 1;
                }
                flags.push((name.to_owned(), value));
            } else {
                positional.push(a.clone());
            }
            i += 1;
        }
        Args { positional, flags }
    }

    fn flag(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn parse_u64(&self, name: &str, default: u64) -> Result<u64, String> {
        match self.flag(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name} expects a number, got `{v}`")),
        }
    }

    fn parse_f64_opt(&self, name: &str) -> Result<Option<f64>, String> {
        // Wilson half-widths never exceed 0.5 (the no-data interval is
        // [0, 1]), so a target of 0.5 or more is satisfied by zero
        // trials — a vacuous "validation" this refuses to run.
        match self.flag(name) {
            None => Ok(None),
            Some(v) => v
                .parse::<f64>()
                .ok()
                .filter(|x| x.is_finite() && *x > 0.0 && *x < 0.5)
                .map(Some)
                .ok_or(format!(
                    "--{name} expects a fraction in (0, 0.5), got `{v}`"
                )),
        }
    }
}

fn rates_of(args: &Args) -> Result<FaultRates, String> {
    match args.flag("rates").unwrap_or("baseline") {
        "baseline" => Ok(FaultRates::baseline()),
        "rhc" => Ok(FaultRates::rhc()),
        "edr" => Ok(FaultRates::edr()),
        other => Err(format!(
            "unknown fault-rate table `{other}` (baseline|rhc|edr)"
        )),
    }
}

fn machine_of(args: &Args) -> Result<MachineConfig, String> {
    match args.flag("machine").unwrap_or("baseline") {
        "baseline" => Ok(MachineConfig::baseline()),
        "config-a" => Ok(MachineConfig::config_a()),
        other => Err(format!("unknown machine `{other}` (baseline|config-a)")),
    }
}

fn cmd_search(args: &Args) -> Result<(), String> {
    let rates = rates_of(args)?;
    let machine = machine_of(args)?;
    let mut config = SearchConfig::quick(machine, Fitness::overall(rates.clone()));
    config.ga = GaParams {
        population: args.parse_u64("population", 16)? as usize,
        generations: args.parse_u64("generations", 24)? as usize,
        seed: args.parse_u64("seed", GaParams::quick().seed)?,
        ..GaParams::quick()
    };
    config.eval_instructions = args.parse_u64("eval", 120_000)?;
    config.final_instructions = args.parse_u64("final", 2_000_000)?;

    eprintln!(
        "searching ({} rates, {} x {} GA)...",
        rates.name(),
        config.ga.population,
        config.ga.generations
    );
    let outcome = generate_stressmark(&config);
    println!("knob settings:");
    print!("{}", KnobSettings::of(&outcome));
    let ser = outcome.result.report.ser(&rates);
    print!("{ser}");
    println!(
        "dead fraction: {:.4}",
        outcome.result.report.deadness().dead_fraction()
    );
    for g in &outcome.ga.history {
        println!(
            "gen\t{}\t{:.5}\t{:.5}{}",
            g.generation,
            g.mean,
            g.best,
            if g.cataclysm { "\tcataclysm" } else { "" }
        );
    }
    Ok(())
}

fn cmd_suite(args: &Args) -> Result<(), String> {
    let rates = rates_of(args)?;
    let machine = machine_of(args)?;
    let instructions = args.parse_u64("instructions", 2_000_000)?;
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let runs = run_suite(&machine, &avf_workloads::all(), instructions, threads);
    if args.has("tsv") {
        println!("name\tqs\tqs_rf\tdl1_dtlb\tl2\tipc");
        for (w, r) in &runs {
            let ser = r.report.ser(&rates);
            println!(
                "{}\t{:.6}\t{:.6}\t{:.6}\t{:.6}\t{:.3}",
                w.name(),
                ser.qs(),
                ser.qs_rf(),
                ser.dl1_dtlb(),
                ser.l2(),
                r.stats.ipc()
            );
        }
    } else {
        println!(
            "{:<18} {:>8} {:>8} {:>10} {:>8} {:>6}",
            "program", "QS", "QS+RF", "DL1+DTLB", "L2", "IPC"
        );
        for (w, r) in &runs {
            let ser = r.report.ser(&rates);
            println!(
                "{:<18} {:>8.3} {:>8.3} {:>10.3} {:>8.3} {:>6.2}",
                w.name(),
                ser.qs(),
                ser.qs_rf(),
                ser.dl1_dtlb(),
                ser.l2(),
                r.stats.ipc()
            );
        }
    }
    Ok(())
}

fn cmd_fig(args: &Args) -> Result<(), String> {
    let which = args
        .positional
        .get(1)
        .ok_or("fig requires an argument: 3|4|5|6|7|8|9|table3")?;
    let cfg = if args.has("smoke") {
        ExperimentConfig::smoke()
    } else {
        ExperimentConfig::standard()
    };
    match which.as_str() {
        "3" => println!("{}", fig3(&cfg)),
        "4" => println!("{}", fig4(&cfg)),
        "5" => println!("{}", fig5(&cfg)),
        "6" => {
            for t in fig6(&cfg) {
                println!("{t}");
            }
        }
        "7" => {
            for t in fig7(&cfg) {
                println!("{t}");
            }
        }
        "8" => println!("{}", fig8(&cfg)),
        "9" => println!("{}", fig9(&cfg)),
        "table3" => println!("{}", table3(&cfg)),
        other => return Err(format!("unknown figure `{other}`")),
    }
    Ok(())
}

fn cmd_bounds(args: &Args) -> Result<(), String> {
    let machine = machine_of(args)?;
    let sizes = machine.structure_sizes();
    println!(
        "closed-form core bounds for `{}` (units/bit):",
        machine.name
    );
    println!(
        "{:<10} {:>10} {:>10} {:>10}",
        "rates", "raw sum", "inst (QS)", "inst gen."
    );
    for rates in [FaultRates::baseline(), FaultRates::rhc(), FaultRates::edr()] {
        println!(
            "{:<10} {:>10.3} {:>10.3} {:>10.3}",
            rates.name(),
            raw_sum_core(&sizes, &rates),
            instantaneous_qs_bound(&sizes, &rates),
            instantaneous_qs_bound_general(&sizes, &rates),
        );
    }
    Ok(())
}

fn cmd_validate(args: &Args) -> Result<(), String> {
    let machine = machine_of(args)?;
    let config = CampaignConfig {
        injections: args.parse_u64("injections", 1000)?,
        seed: args.parse_u64("seed", 42)?,
        threads: args.parse_u64("threads", 0)? as usize,
        instr_budget: args.parse_u64("instructions", 30_000)?,
        ci_target: args.parse_f64_opt("ci-target")?,
        batch_size: args.parse_u64("batch", 128)?.max(1),
        checkpoint_interval: args.parse_u64("checkpoint-interval", 0)?,
        ..CampaignConfig::default()
    };
    match config.ci_target {
        Some(target) => eprintln!(
            "cross-validating ACE AVF by adaptive statistical fault injection \
             (CI target ±{target}, cap {} injections/program, seed {})...",
            config.injections, config.seed
        ),
        None => eprintln!(
            "cross-validating ACE AVF by statistical fault injection \
             ({} injections/program, seed {})...",
            config.injections, config.seed
        ),
    }
    let validation = injection_vs_ace(&machine, &config);
    print!("{validation}");
    if validation.all_consistent() {
        Ok(())
    } else {
        Err("injection measured more vulnerability than the ACE analysis claims".to_owned())
    }
}

const USAGE: &str = "\
usage: avf-stressmark <command> [options]

commands:
  search    generate a stressmark via the GA (options: --rates, --machine,
            --population, --generations, --eval, --final, --seed)
  suite     run the 33-program proxy suite (options: --rates, --machine,
            --instructions, --tsv)
  fig       regenerate a paper figure: fig <3|4|5|6|7|8|9|table3> [--smoke]
  bounds    print the closed-form worst-case bounds
  validate  cross-validate ACE AVF with parallel statistical fault
            injection on the stressmark + 3 workload profiles (options:
            --machine, --injections, --seed, --instructions, --threads;
            adaptive sequential sampling: --ci-target <half-width in
            (0, 0.5)> stops each campaign once every structure's 95% CI
            is that tight, --injections then caps the trials, --batch
            sets the per-batch size, --checkpoint-interval the
            golden-run checkpoint spacing in cycles)
";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = Args::parse(&argv);
    let result = match args.positional.first().map(String::as_str) {
        Some("search") => cmd_search(&args),
        Some("suite") => cmd_suite(&args),
        Some("fig") => cmd_fig(&args),
        Some("bounds") => cmd_bounds(&args),
        Some("validate") => cmd_validate(&args),
        _ => {
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
