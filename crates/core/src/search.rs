//! The end-to-end stressmark search: GA over code-generator knobs with
//! simulated SER as the fitness (paper Figure 2's outer loop).
//!
//! The GA consumes a pluggable [`avf_ga::FitnessEvaluator`], and
//! [`SearchBackend`] selects who implements it: an in-process memoizing
//! thread pool, a fleet of `serve` workers spoken to directly, or the
//! campaign broker. Scores are deterministic functions of
//! (machine, fitness, budget, genome), so at a fixed seed the GA
//! history — per-generation best fitness, final genome, and evaluation
//! count — is bit-identical across all three venues, including runs
//! where a worker dies mid-generation and its unacknowledged
//! individuals are re-dispatched.

use avf_ace::Fitness;
use avf_broker::BrokeredEvaluator;
use avf_codegen::{generate, Knobs, Stressmark, GENOME_LEN};
use avf_ga::{optimize, EvalError, GaParams, GaResult, LocalEvaluator};
use avf_service::{evaluate_genome, AuthKey, EvalContext, RemoteEvaluator};
use avf_sim::{simulate, MachineConfig, SimResult};

pub use avf_service::target_params;

/// Where fitness evaluation runs.
#[derive(Debug, Clone)]
pub enum SearchBackend {
    /// In-process evaluation on a persistent memoizing thread pool
    /// ([`LocalEvaluator`]).
    Local {
        /// Worker threads (0 = all available cores).
        threads: usize,
    },
    /// Generations fan out across a fleet of `serve` workers
    /// (`search --workers host:port,...`).
    Workers {
        /// Worker addresses (`host:port`).
        addrs: Vec<String>,
        /// Shared frame-authentication key (`--auth-key-file`).
        auth: Option<AuthKey>,
    },
    /// Generations relay through the campaign broker into its fleet
    /// (`search --broker addr --tenant name`).
    Broker {
        /// Broker address (`host:port`).
        addr: String,
        /// Tenant the search bills to under fair scheduling.
        tenant: String,
        /// Shared frame-authentication key (`--auth-key-file`).
        auth: Option<AuthKey>,
    },
}

impl Default for SearchBackend {
    fn default() -> SearchBackend {
        SearchBackend::Local { threads: 0 }
    }
}

/// Configuration of one stressmark search.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Target microarchitecture.
    pub machine: MachineConfig,
    /// Fitness function (fault rates + scope).
    pub fitness: Fitness,
    /// GA parameters.
    pub ga: GaParams,
    /// Instructions simulated per candidate evaluation (scaled-down
    /// default; the paper ran 100M per candidate).
    pub eval_instructions: u64,
    /// Instructions simulated for the final re-evaluation of the winner.
    pub final_instructions: u64,
    /// Who evaluates each generation.
    pub backend: SearchBackend,
}

impl SearchConfig {
    /// A fast default: baseline machine, overall-SER fitness under the
    /// given rates, quick GA, 150k-instruction evaluations, local
    /// evaluation on all cores.
    #[must_use]
    pub fn quick(machine: MachineConfig, fitness: Fitness) -> SearchConfig {
        SearchConfig {
            machine,
            fitness,
            ga: GaParams::quick(),
            eval_instructions: 150_000,
            final_instructions: 3_000_000,
            backend: SearchBackend::default(),
        }
    }

    /// The paper-scale configuration (50 × 50 GA); candidate budgets stay
    /// simulator-scaled per DESIGN.md §7.
    #[must_use]
    pub fn paper(machine: MachineConfig, fitness: Fitness) -> SearchConfig {
        SearchConfig {
            ga: GaParams::paper(),
            ..SearchConfig::quick(machine, fitness)
        }
    }

    fn eval_context(&self) -> EvalContext {
        EvalContext {
            machine: self.machine.clone(),
            fitness: self.fitness.clone(),
            instr_budget: self.eval_instructions,
        }
    }
}

/// Everything the search produced.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The winning stressmark (program + knobs + derived properties).
    pub stressmark: Stressmark,
    /// Long-budget re-evaluation of the winner.
    pub result: SimResult,
    /// Its fitness score at the final budget.
    pub score: f64,
    /// GA provenance (convergence history for Figure 5b).
    pub ga: GaResult,
}

/// Runs the full search loop of Figure 2: the GA proposes knob values, the
/// code generator materializes candidates, the configured
/// [`SearchBackend`] measures their SER, and the best candidate is
/// re-evaluated locally at the final budget.
///
/// # Errors
///
/// Returns an [`EvalError`] when a remote or brokered backend fails —
/// every worker dead, a protocol violation, or a refused connection.
/// Local searches cannot fail.
pub fn generate_stressmark(config: &SearchConfig) -> Result<SearchOutcome, EvalError> {
    let ga = match &config.backend {
        SearchBackend::Local { threads } => {
            let ctx = config.eval_context();
            let mut evaluator =
                LocalEvaluator::new(*threads, move |genes: &[f64]| evaluate_genome(&ctx, genes));
            optimize(GENOME_LEN, &config.ga, &mut evaluator)?
        }
        SearchBackend::Workers { addrs, auth } => {
            let mut evaluator = RemoteEvaluator::connect(addrs, *auth, config.eval_context())
                .map_err(|e| EvalError(e.to_string()))?;
            optimize(GENOME_LEN, &config.ga, &mut evaluator)?
        }
        SearchBackend::Broker { addr, tenant, auth } => {
            let mut evaluator =
                BrokeredEvaluator::connect(addr, tenant, *auth, config.eval_context())
                    .map_err(|e| EvalError(e.to_string()))?;
            optimize(GENOME_LEN, &config.ga, &mut evaluator)?
        }
    };

    let params = target_params(&config.machine);
    let knobs = Knobs::from_genome(&ga.best_genome, &params);
    let stressmark = generate(&knobs, &params);
    let result = simulate(
        &config.machine,
        &stressmark.program,
        config.final_instructions,
    );
    let score = config.fitness.score(&result.report);
    Ok(SearchOutcome {
        stressmark,
        result,
        score,
        ga,
    })
}

/// Evaluates fixed knob values (no search) at the given budget — useful for
/// ablations and regression tests.
#[must_use]
pub fn evaluate_knobs(
    machine: &MachineConfig,
    fitness: &Fitness,
    knobs: &Knobs,
    instructions: u64,
) -> (Stressmark, SimResult, f64) {
    let params = target_params(machine);
    let sm = generate(knobs, &params);
    let result = simulate(machine, &sm.program, instructions);
    let score = fitness.score(&result.report);
    (sm, result, score)
}

#[cfg(test)]
mod tests {
    use super::*;
    use avf_ace::FaultRates;

    #[test]
    fn target_params_track_machine() {
        let p = target_params(&MachineConfig::config_a());
        assert_eq!(p.rob_entries, 96);
        assert_eq!(p.dtlb_entries, 512);
        assert_eq!(p.l2_bytes, 2 * 1024 * 1024);
    }

    fn tiny_config() -> SearchConfig {
        let mut config = SearchConfig::quick(
            MachineConfig::baseline(),
            Fitness::overall(FaultRates::baseline()),
        );
        config.ga = GaParams {
            population: 6,
            generations: 5,
            ..GaParams::quick()
        };
        config.eval_instructions = 8_000;
        config.final_instructions = 20_000;
        config
    }

    #[test]
    fn tiny_search_improves_over_first_generation() {
        let outcome = generate_stressmark(&tiny_config()).expect("local search cannot fail");
        assert!(outcome.ga.history.len() == 5);
        let first = outcome.ga.history[0].best;
        assert!(
            outcome.ga.best_fitness >= first,
            "search must never regress: {} vs {}",
            outcome.ga.best_fitness,
            first
        );
        assert!(outcome.score > 0.0);
        assert!(outcome.stressmark.knobs.loop_size >= 10);
    }

    #[test]
    fn search_is_thread_count_invariant() {
        let mut one = tiny_config();
        one.backend = SearchBackend::Local { threads: 1 };
        let mut four = tiny_config();
        four.backend = SearchBackend::Local { threads: 4 };
        let a = generate_stressmark(&one).expect("local search cannot fail");
        let b = generate_stressmark(&four).expect("local search cannot fail");
        assert_eq!(a.ga.best_genome, b.ga.best_genome);
        assert_eq!(a.ga.evaluations, b.ga.evaluations);
        assert_eq!(a.score.to_bits(), b.score.to_bits());
        for (x, y) in a.ga.history.iter().zip(&b.ga.history) {
            assert_eq!(x.best.to_bits(), y.best.to_bits());
            assert_eq!(x.mean.to_bits(), y.mean.to_bits());
        }
    }

    #[test]
    fn evaluate_knobs_is_deterministic() {
        let fitness = Fitness::overall(FaultRates::baseline());
        let machine = MachineConfig::baseline();
        let knobs = Knobs::paper_baseline();
        let (_, _, a) = evaluate_knobs(&machine, &fitness, &knobs, 20_000);
        let (_, _, b) = evaluate_knobs(&machine, &fitness, &knobs, 20_000);
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
