//! The end-to-end stressmark search: GA over code-generator knobs with
//! simulated SER as the fitness (paper Figure 2's outer loop).

use avf_codegen::{generate, Knobs, Stressmark, TargetParams, GENOME_LEN};
use avf_ga::{optimize, GaParams, GaResult};
use avf_sim::{simulate, MachineConfig, SimResult};

use crate::fitness::Fitness;

/// Configuration of one stressmark search.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Target microarchitecture.
    pub machine: MachineConfig,
    /// Fitness function (fault rates + scope).
    pub fitness: Fitness,
    /// GA parameters.
    pub ga: GaParams,
    /// Instructions simulated per candidate evaluation (scaled-down
    /// default; the paper ran 100M per candidate).
    pub eval_instructions: u64,
    /// Instructions simulated for the final re-evaluation of the winner.
    pub final_instructions: u64,
}

impl SearchConfig {
    /// A fast default: baseline machine, overall-SER fitness under the
    /// given rates, quick GA, 150k-instruction evaluations.
    #[must_use]
    pub fn quick(machine: MachineConfig, fitness: Fitness) -> SearchConfig {
        SearchConfig {
            machine,
            fitness,
            ga: GaParams::quick(),
            eval_instructions: 150_000,
            final_instructions: 3_000_000,
        }
    }

    /// The paper-scale configuration (50 × 50 GA); candidate budgets stay
    /// simulator-scaled per DESIGN.md §7.
    #[must_use]
    pub fn paper(machine: MachineConfig, fitness: Fitness) -> SearchConfig {
        SearchConfig {
            ga: GaParams::paper(),
            ..SearchConfig::quick(machine, fitness)
        }
    }
}

/// Everything the search produced.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The winning stressmark (program + knobs + derived properties).
    pub stressmark: Stressmark,
    /// Long-budget re-evaluation of the winner.
    pub result: SimResult,
    /// Its fitness score at the final budget.
    pub score: f64,
    /// GA provenance (convergence history for Figure 5b).
    pub ga: GaResult,
}

/// Derives code-generator target parameters from a machine configuration.
#[must_use]
pub fn target_params(machine: &MachineConfig) -> TargetParams {
    TargetParams {
        rob_entries: machine.rob_entries as u32,
        line_bytes: machine.dl1.line_bytes,
        page_bytes: machine.page_bytes,
        dtlb_entries: machine.dtlb_entries as u32,
        dl1_bytes: machine.dl1.size_bytes,
        l2_bytes: machine.l2.size_bytes,
    }
}

/// Runs the full search loop of Figure 2: the GA proposes knob values, the
/// code generator materializes candidates, the simulator measures their
/// SER, and the best candidate is re-evaluated at the final budget.
#[must_use]
pub fn generate_stressmark(config: &SearchConfig) -> SearchOutcome {
    let params = target_params(&config.machine);
    let machine = config.machine.clone();
    let fitness = config.fitness.clone();
    let eval_budget = config.eval_instructions;

    let evaluate = move |genes: &[f64]| -> f64 {
        let knobs = Knobs::from_genome(genes, &params);
        let candidate = generate(&knobs, &params);
        let result = simulate(&machine, &candidate.program, eval_budget);
        fitness.score(&result.report)
    };
    let ga = optimize(GENOME_LEN, &config.ga, evaluate);

    let params = target_params(&config.machine);
    let knobs = Knobs::from_genome(&ga.best_genome, &params);
    let stressmark = generate(&knobs, &params);
    let result = simulate(
        &config.machine,
        &stressmark.program,
        config.final_instructions,
    );
    let score = config.fitness.score(&result.report);
    SearchOutcome {
        stressmark,
        result,
        score,
        ga,
    }
}

/// Evaluates fixed knob values (no search) at the given budget — useful for
/// ablations and regression tests.
#[must_use]
pub fn evaluate_knobs(
    machine: &MachineConfig,
    fitness: &Fitness,
    knobs: &Knobs,
    instructions: u64,
) -> (Stressmark, SimResult, f64) {
    let params = target_params(machine);
    let sm = generate(knobs, &params);
    let result = simulate(machine, &sm.program, instructions);
    let score = fitness.score(&result.report);
    (sm, result, score)
}

#[cfg(test)]
mod tests {
    use super::*;
    use avf_ace::FaultRates;

    #[test]
    fn target_params_track_machine() {
        let p = target_params(&MachineConfig::config_a());
        assert_eq!(p.rob_entries, 96);
        assert_eq!(p.dtlb_entries, 512);
        assert_eq!(p.l2_bytes, 2 * 1024 * 1024);
    }

    #[test]
    fn tiny_search_improves_over_first_generation() {
        let mut config = SearchConfig::quick(
            MachineConfig::baseline(),
            Fitness::overall(FaultRates::baseline()),
        );
        config.ga = GaParams {
            population: 6,
            generations: 5,
            ..GaParams::quick()
        };
        config.eval_instructions = 8_000;
        config.final_instructions = 20_000;
        let outcome = generate_stressmark(&config);
        assert!(outcome.ga.history.len() == 5);
        let first = outcome.ga.history[0].best;
        assert!(
            outcome.ga.best_fitness >= first,
            "search must never regress: {} vs {}",
            outcome.ga.best_fitness,
            first
        );
        assert!(outcome.score > 0.0);
        assert!(outcome.stressmark.knobs.loop_size >= 10);
    }

    #[test]
    fn evaluate_knobs_is_deterministic() {
        let fitness = Fitness::overall(FaultRates::baseline());
        let machine = MachineConfig::baseline();
        let knobs = Knobs::paper_baseline();
        let (_, _, a) = evaluate_knobs(&machine, &fitness, &knobs, 20_000);
        let (_, _, b) = evaluate_knobs(&machine, &fitness, &knobs, 20_000);
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
