//! Closed-form bounds on core SER — the paper's Section VI "back of the
//! envelope" analysis and the Section VII comparison methodologies.
//!
//! * [`instantaneous_qs_bound`]: the highest *instantaneous* queueing-
//!   structure SER, achieved in the shadow of an L2 miss when the ROB is
//!   full and its entries are spread to fill the LQ and SQ (the paper
//!   computes 0.899 units/bit for the baseline). This is unsustainable —
//!   any forward progress drains the queues — so the stressmark's measured
//!   value approaching it is the paper's evidence of near-optimality.
//! * [`raw_sum`]: the naive worst case that ignores program masking
//!   entirely (AVF = 1 everywhere): 1.0 / 0.59 / 0.39 units/bit for
//!   Baseline / RHC / EDR in the paper — "an over-estimation [that] will
//!   lead to an extremely pessimistic design".

use avf_ace::{FaultRates, Structure, StructureClass, StructureSizes};

/// Highest instantaneous QS occupancy SER, units/bit: ROB 100% ACE, its
/// entries distributed to fill the LQ and SQ, the remainder in the IQ, and
/// the FUs idle (no instruction can be executing while everything waits on
/// the miss).
#[must_use]
pub fn instantaneous_qs_bound(sizes: &StructureSizes, rates: &FaultRates) -> f64 {
    let rob = sizes.rob_entries as f64;
    let lq = (sizes.lq_entries as f64).min(rob);
    let sq = (sizes.sq_entries as f64).min(rob - lq);
    let iq = (sizes.iq_entries as f64).min(rob - lq - sq);

    let mut units = 0.0;
    units += sizes.bits(Structure::Rob) as f64 * rates.rate(Structure::Rob);
    let iq_frac = iq / sizes.iq_entries as f64;
    units += sizes.bits(Structure::Iq) as f64 * iq_frac * rates.rate(Structure::Iq);
    let lq_frac = lq / sizes.lq_entries as f64;
    units += sizes.bits(Structure::LqTag) as f64 * lq_frac * rates.rate(Structure::LqTag);
    units += sizes.bits(Structure::LqData) as f64 * lq_frac * rates.rate(Structure::LqData);
    let sq_frac = sq / sizes.sq_entries as f64;
    units += sizes.bits(Structure::SqTag) as f64 * sq_frac * rates.rate(Structure::SqTag);
    units += sizes.bits(Structure::SqData) as f64 * sq_frac * rates.rate(Structure::SqData);
    // FU contribution is zero: all activity has ceased in the miss shadow.
    units / sizes.class_bits(StructureClass::Qs) as f64
}

/// Generalized instantaneous QS bound: the best *transient* allocation of
/// in-flight instructions to structures under the given fault rates.
///
/// The ROB is full (always possible); IQ/LQ/SQ/FU occupancies are bounded
/// by their capacities and by the ROB size in total, and are allocated
/// greedily by rate-weighted bits per entry. Unlike
/// [`instantaneous_qs_bound`] (the paper's miss-shadow scenario with idle
/// FUs), this remains a valid upper bound under protected configurations
/// such as EDR, where the worst case is compute-active rather than
/// stall-bound.
#[must_use]
pub fn instantaneous_qs_bound_general(sizes: &StructureSizes, rates: &FaultRates) -> f64 {
    let mut units = sizes.bits(Structure::Rob) as f64 * rates.rate(Structure::Rob);
    // (capacity, bits-per-entry × rate, total bits × rate)
    let lq_bits = (sizes.bits(Structure::LqTag) as f64 * rates.rate(Structure::LqTag)
        + sizes.bits(Structure::LqData) as f64 * rates.rate(Structure::LqData))
        / sizes.lq_entries as f64;
    let sq_bits = (sizes.bits(Structure::SqTag) as f64 * rates.rate(Structure::SqTag)
        + sizes.bits(Structure::SqData) as f64 * rates.rate(Structure::SqData))
        / sizes.sq_entries as f64;
    let iq_bits =
        sizes.bits(Structure::Iq) as f64 * rates.rate(Structure::Iq) / sizes.iq_entries as f64;
    let fu_slots = sizes.n_alus + sizes.n_muls * sizes.mul_latency;
    let fu_bits = sizes.bits(Structure::Fu) as f64 * rates.rate(Structure::Fu) / fu_slots as f64;

    let mut options = [
        (sizes.lq_entries as f64, lq_bits),
        (sizes.sq_entries as f64, sq_bits),
        (sizes.iq_entries as f64, iq_bits),
        (fu_slots as f64, fu_bits),
    ];
    options.sort_by(|a, b| b.1.total_cmp(&a.1));
    let mut budget = sizes.rob_entries as f64;
    for (cap, per_entry) in options {
        let take = cap.min(budget);
        units += take * per_entry;
        budget -= take;
        if budget <= 0.0 {
            break;
        }
    }
    units / sizes.class_bits(StructureClass::Qs) as f64
}

/// The naive "sum of raw circuit-level fault rates" worst case over a set
/// of classes, units/bit — no derating by program behaviour at all.
#[must_use]
pub fn raw_sum(sizes: &StructureSizes, rates: &FaultRates, classes: &[StructureClass]) -> f64 {
    let mut units = 0.0;
    let mut bits = 0u64;
    for s in Structure::ALL {
        if classes.contains(&s.class()) {
            units += sizes.bits(s) as f64 * rates.rate(s);
            bits += sizes.bits(s);
        }
    }
    units / bits as f64
}

/// Raw-sum worst case for the core (QS + RF), the quantity the paper quotes
/// as 1 / 0.59 / 0.39 units/bit.
#[must_use]
pub fn raw_sum_core(sizes: &StructureSizes, rates: &FaultRates) -> f64 {
    raw_sum(sizes, rates, &[StructureClass::Qs, StructureClass::Rf])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_instantaneous_bound_near_paper_value() {
        // The paper computes 0.899 units/bit with its exact per-structure
        // bit widths; ours differ slightly in the FU sizing, so we check
        // the same ballpark.
        let v = instantaneous_qs_bound(&StructureSizes::baseline(), &FaultRates::baseline());
        assert!((0.8..0.95).contains(&v), "got {v}");
    }

    #[test]
    fn bound_accounts_for_rob_capacity() {
        // 80 ROB entries: 32 LQ + 32 SQ + 16 of 20 IQ slots.
        let sizes = StructureSizes::baseline();
        let v = instantaneous_qs_bound(&sizes, &FaultRates::baseline());
        let manual = (sizes.bits(Structure::Rob) as f64
            + sizes.bits(Structure::Iq) as f64 * (16.0 / 20.0)
            + (sizes.bits(Structure::LqTag) + sizes.bits(Structure::LqData)) as f64
            + (sizes.bits(Structure::SqTag) + sizes.bits(Structure::SqData)) as f64)
            / sizes.class_bits(StructureClass::Qs) as f64;
        assert!((v - manual).abs() < 1e-12);
    }

    #[test]
    fn general_bound_dominates_miss_shadow_bound() {
        let sizes = StructureSizes::baseline();
        for rates in [FaultRates::baseline(), FaultRates::rhc(), FaultRates::edr()] {
            let shadow = instantaneous_qs_bound(&sizes, &rates);
            let general = instantaneous_qs_bound_general(&sizes, &rates);
            assert!(
                general >= shadow - 1e-12,
                "{}: general {general} must cover the miss-shadow scenario {shadow}",
                rates.name()
            );
        }
    }

    #[test]
    fn general_bound_under_edr_counts_iq_and_fu() {
        // Under EDR only IQ, FU and RF carry fault rate; the general bound
        // must allocate them fully.
        let sizes = StructureSizes::baseline();
        let rates = FaultRates::edr();
        let v = instantaneous_qs_bound_general(&sizes, &rates);
        let manual = (sizes.bits(Structure::Iq) + sizes.bits(Structure::Fu)) as f64
            / sizes.class_bits(StructureClass::Qs) as f64;
        assert!((v - manual).abs() < 1e-12, "{v} vs {manual}");
    }

    #[test]
    fn raw_sum_baseline_is_one() {
        let v = raw_sum_core(&StructureSizes::baseline(), &FaultRates::baseline());
        assert!(
            (v - 1.0).abs() < 1e-12,
            "uniform rates give exactly 1 unit/bit"
        );
    }

    #[test]
    fn raw_sum_orders_rate_tables() {
        let sizes = StructureSizes::baseline();
        let base = raw_sum_core(&sizes, &FaultRates::baseline());
        let rhc = raw_sum_core(&sizes, &FaultRates::rhc());
        let edr = raw_sum_core(&sizes, &FaultRates::edr());
        assert!(base > rhc && rhc > edr, "{base} > {rhc} > {edr}");
        // Paper quotes 0.59 and 0.39 with its widths; ours land nearby.
        assert!((0.45..0.7).contains(&rhc), "rhc {rhc}");
        assert!((0.3..0.5).contains(&edr), "edr {edr}");
    }

    #[test]
    fn bounds_exceed_any_sustainable_value() {
        // The instantaneous bound must beat the raw QS occupancy any real
        // schedule can sustain (FU bits are forced idle but everything else
        // is full).
        let sizes = StructureSizes::baseline();
        let v = instantaneous_qs_bound(&sizes, &FaultRates::baseline());
        assert!(v < 1.0, "FU idleness keeps the bound below the raw sum");
    }
}
