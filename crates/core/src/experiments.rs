//! Experiment drivers: one function per figure/table of the paper's
//! evaluation (Sections VI and VII). Each driver is self-contained and
//! renders paper-shaped output; `avf-bench` wraps them as regenerable
//! benchmark targets, and EXPERIMENTS.md records paper-vs-measured values.

use std::fmt;

use avf_ace::{FaultRates, Structure, StructureClass};
use avf_ga::{GaParams, GenerationStats};
use avf_inject::{Campaign, CampaignConfig, CampaignReport};
use avf_sim::{simulate, MachineConfig, SimResult};
use avf_workloads::Workload;

use crate::bounds::{instantaneous_qs_bound, raw_sum_core};
use crate::search::{generate_stressmark, SearchConfig, SearchOutcome};
use crate::table::Table;
use avf_ace::Fitness;

/// Budgets and GA scale for experiment regeneration.
///
/// Defaults are the scaled-down budgets of DESIGN.md §7; the paper's scale
/// (100M-instruction SimPoints, 50×50 GA) is reachable by raising them.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Instructions per workload measurement.
    pub workload_instructions: u64,
    /// Instructions per GA candidate evaluation.
    pub eval_instructions: u64,
    /// Instructions for final stressmark measurements.
    pub final_instructions: u64,
    /// GA parameters.
    pub ga: GaParams,
    /// Worker threads for workload sweeps.
    pub threads: usize,
}

impl ExperimentConfig {
    /// Default experiment scale (minutes for the full set).
    #[must_use]
    pub fn standard() -> ExperimentConfig {
        ExperimentConfig {
            workload_instructions: 2_000_000,
            eval_instructions: 120_000,
            final_instructions: 2_000_000,
            ga: GaParams::quick(),
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }

    /// Tiny scale for unit/integration tests (seconds).
    #[must_use]
    pub fn smoke() -> ExperimentConfig {
        ExperimentConfig {
            workload_instructions: 60_000,
            eval_instructions: 10_000,
            final_instructions: 60_000,
            ga: GaParams {
                population: 6,
                generations: 4,
                ..GaParams::quick()
            },
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }

    fn search_config(&self, machine: MachineConfig, fitness: Fitness) -> SearchConfig {
        SearchConfig {
            machine,
            fitness,
            ga: self.ga.clone(),
            eval_instructions: self.eval_instructions,
            final_instructions: self.final_instructions,
            backend: crate::SearchBackend::Local {
                threads: self.threads,
            },
        }
    }
}

/// Runs every workload on `machine` for `instructions`, in parallel.
#[must_use]
pub fn run_suite(
    machine: &MachineConfig,
    workloads: &[Workload],
    instructions: u64,
    threads: usize,
) -> Vec<(Workload, SimResult)> {
    let n = workloads.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(n);
    let mut results: Vec<Option<(Workload, SimResult)>> = (0..n).map(|_| None).collect();
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        let mut rest: &mut [Option<(Workload, SimResult)>] = &mut results;
        let mut offset = 0;
        let mut handles = Vec::new();
        while offset < n {
            let take = chunk.min(n - offset);
            let (head, tail) = rest.split_at_mut(take);
            rest = tail;
            let slice = &workloads[offset..offset + take];
            handles.push(scope.spawn(move || {
                for (out, w) in head.iter_mut().zip(slice) {
                    let program = w.build();
                    let result = simulate(machine, &program, instructions);
                    *out = Some((w.clone(), result));
                }
            }));
            offset += take;
        }
        for h in handles {
            h.join().expect("workload worker panicked");
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("all slots filled"))
        .collect()
}

/// Bit-weighted AVF over a group of structures (merges tag/data arrays for
/// the per-structure figures).
#[must_use]
pub fn merged_avf(result: &SimResult, structures: &[Structure]) -> f64 {
    result.report.merged_avf(structures)
}

fn ser_row(result: &SimResult, rates: &FaultRates) -> Vec<f64> {
    let ser = result.report.ser(rates);
    vec![ser.qs(), ser.qs_rf(), ser.dl1_dtlb(), ser.l2()]
}

const SER_COLUMNS: [&str; 4] = ["QS", "QS+RF", "DL1+DTLB", "L2"];

/// Generates the stressmark for `machine` under `rates` (overall-SER
/// fitness, as in the paper).
#[must_use]
pub fn stressmark_for(
    cfg: &ExperimentConfig,
    machine: MachineConfig,
    rates: FaultRates,
) -> SearchOutcome {
    generate_stressmark(&cfg.search_config(machine, Fitness::overall(rates)))
        .expect("local search cannot fail")
}

/// Figure 3: normalized SER of the stressmark vs the SPEC CPU2006 proxies
/// on the baseline configuration.
#[must_use]
pub fn fig3(cfg: &ExperimentConfig) -> Table {
    let machine = MachineConfig::baseline();
    let rates = FaultRates::baseline();
    let sm = stressmark_for(cfg, machine.clone(), rates.clone());
    let runs = run_suite(
        &machine,
        &avf_workloads::spec_all(),
        cfg.workload_instructions,
        cfg.threads,
    );
    let mut t = Table::new(
        "Figure 3: SER (units/bit), stressmark vs SPEC CPU2006, baseline",
        &SER_COLUMNS,
    );
    t.push("Stressmark:Baseline", ser_row(&sm.result, &rates));
    for (w, r) in &runs {
        t.push(w.name(), ser_row(r, &rates));
    }
    t
}

/// Figure 4: normalized SER of the stressmark vs the MiBench proxies on the
/// baseline configuration.
#[must_use]
pub fn fig4(cfg: &ExperimentConfig) -> Table {
    let machine = MachineConfig::baseline();
    let rates = FaultRates::baseline();
    let sm = stressmark_for(cfg, machine.clone(), rates.clone());
    let runs = run_suite(
        &machine,
        &avf_workloads::mibench(),
        cfg.workload_instructions,
        cfg.threads,
    );
    let mut t = Table::new(
        "Figure 4: SER (units/bit), stressmark vs MiBench, baseline",
        &SER_COLUMNS,
    );
    t.push("Stressmark:Baseline", ser_row(&sm.result, &rates));
    for (w, r) in &runs {
        t.push(w.name(), ser_row(r, &rates));
    }
    t
}

/// Figure 5: the GA's solution (knob settings, 5a) and its convergence
/// history (5b).
#[derive(Debug, Clone)]
pub struct Fig5 {
    /// The winning stressmark's knobs and derived properties (Figure 5a).
    pub outcome: SearchOutcome,
    /// Per-generation mean/best fitness (Figure 5b).
    pub convergence: Vec<GenerationStats>,
}

impl fmt::Display for Fig5 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "== Figure 5(a): knob settings of the final GA solution =="
        )?;
        write!(f, "{}", KnobSettings::of(&self.outcome))?;
        writeln!(
            f,
            "== Figure 5(b): GA convergence (mean fitness per generation) =="
        )?;
        for g in &self.convergence {
            writeln!(
                f,
                "gen {:>3}  mean {:.4}  best {:.4}{}",
                g.generation,
                g.mean,
                g.best,
                if g.cataclysm { "  <- cataclysm" } else { "" }
            )?;
        }
        Ok(())
    }
}

/// Figure 5 driver (baseline machine and rates).
#[must_use]
pub fn fig5(cfg: &ExperimentConfig) -> Fig5 {
    let outcome = stressmark_for(cfg, MachineConfig::baseline(), FaultRates::baseline());
    let convergence = outcome.ga.history.clone();
    Fig5 {
        outcome,
        convergence,
    }
}

/// Knob-settings rendering shared by Figures 5a, 8c, 8d and 9b.
#[derive(Debug, Clone)]
pub struct KnobSettings {
    lines: Vec<(String, String)>,
}

impl KnobSettings {
    /// Extracts the settings table from a search outcome.
    #[must_use]
    pub fn of(outcome: &SearchOutcome) -> KnobSettings {
        let k = &outcome.stressmark.knobs;
        let d = &outcome.stressmark.derived;
        let lines = vec![
            ("Loop Size".to_owned(), k.loop_size.to_string()),
            ("No. of loads".to_owned(), k.n_loads.to_string()),
            ("No. of stores".to_owned(), k.n_stores.to_string()),
            (
                "No. of Independent Arithmetic Instructions".to_owned(),
                d.indep_ops.to_string(),
            ),
            (
                match k.l2_mode {
                    avf_codegen::L2Mode::Miss => "No. of instructions dependent on L2 miss",
                    avf_codegen::L2Mode::Hit => "No. of instructions dependent on L2 hit",
                }
                .to_owned(),
                k.n_dep_on_miss.to_string(),
            ),
            (
                "Avg. Dependence Chain Length".to_owned(),
                format!("{:.2}", d.avg_chain_len),
            ),
            ("Dependency Distance".to_owned(), k.dep_distance.to_string()),
            (
                "Fraction of Long Latency Arithmetic".to_owned(),
                format!("{:.2}", k.frac_long_latency),
            ),
            (
                "Fraction of Reg-Reg arithmetic instructions".to_owned(),
                format!("{:.2}", k.frac_reg_reg),
            ),
            ("Template".to_owned(), format!("{:?}", k.l2_mode)),
        ];
        KnobSettings { lines }
    }

    /// The `(parameter, value)` pairs.
    #[must_use]
    pub fn lines(&self) -> &[(String, String)] {
        &self.lines
    }
}

impl fmt::Display for KnobSettings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in &self.lines {
            writeln!(f, "  {k:<44} {v}")?;
        }
        Ok(())
    }
}

const AVF_COLUMNS: [&str; 9] = ["ROB", "IQ", "LQ", "SQ", "FU", "RF", "DL1", "DTLB", "L2"];

fn avf_row(result: &SimResult) -> Vec<f64> {
    vec![
        merged_avf(result, &[Structure::Rob]),
        merged_avf(result, &[Structure::Iq]),
        merged_avf(result, &[Structure::LqTag, Structure::LqData]),
        merged_avf(result, &[Structure::SqTag, Structure::SqData]),
        merged_avf(result, &[Structure::Fu]),
        merged_avf(result, &[Structure::RegFile]),
        merged_avf(result, &[Structure::Dl1Data, Structure::Dl1Tag]),
        merged_avf(result, &[Structure::Dtlb]),
        merged_avf(result, &[Structure::L2Data, Structure::L2Tag]),
    ]
}

/// Figure 6: per-structure AVF of every workload (one table per suite,
/// stressmark included in each for reference).
#[must_use]
pub fn fig6(cfg: &ExperimentConfig) -> [Table; 3] {
    let machine = MachineConfig::baseline();
    let sm = stressmark_for(cfg, machine.clone(), FaultRates::baseline());
    let mut tables = Vec::new();
    for (title, workloads) in [
        (
            "Figure 6(a): AVF, SPEC CPU2006 integer",
            avf_workloads::spec_int(),
        ),
        (
            "Figure 6(b): AVF, SPEC CPU2006 fp",
            avf_workloads::spec_fp(),
        ),
        ("Figure 6(c): AVF, MiBench", avf_workloads::mibench()),
    ] {
        let runs = run_suite(&machine, &workloads, cfg.workload_instructions, cfg.threads);
        let mut t = Table::new(title, &AVF_COLUMNS);
        t.push("Stressmark:Baseline", avf_row(&sm.result));
        for (w, r) in &runs {
            t.push(w.name(), avf_row(r));
        }
        tables.push(t);
    }
    tables.try_into().expect("three suites")
}

/// Figure 7: core SER of all workloads and the re-targeted stressmarks on
/// the RHC (a) and EDR (b) fault-rate configurations.
#[must_use]
pub fn fig7(cfg: &ExperimentConfig) -> [Table; 2] {
    let machine = MachineConfig::baseline();
    let runs = run_suite(
        &machine,
        &avf_workloads::all(),
        cfg.workload_instructions,
        cfg.threads,
    );
    let mut out = Vec::new();
    for rates in [FaultRates::rhc(), FaultRates::edr()] {
        let sm = stressmark_for(cfg, machine.clone(), rates.clone());
        let title = format!(
            "Figure 7: core SER (units/bit) under {} fault rates",
            rates.name()
        );
        let mut t = Table::new(title, &["QS", "QS+RF"]);
        let ser = sm.result.report.ser(&rates);
        t.push(
            format!("Stressmark:{}", rates.name()),
            vec![ser.qs(), ser.qs_rf()],
        );
        for (w, r) in &runs {
            let ser = r.report.ser(&rates);
            t.push(w.name(), vec![ser.qs(), ser.qs_rf()]);
        }
        out.push(t);
    }
    out.try_into().expect("two rate configs")
}

/// Figure 8: stressmark adaptation to circuit-level fault rates — queueing
/// AVF of the three stressmarks (8b) plus their knob settings (8c/8d).
#[derive(Debug, Clone)]
pub struct Fig8 {
    /// Queueing-structure AVF of the Baseline/RHC/EDR stressmarks (8b).
    pub avf: Table,
    /// Knob settings for each stressmark (5a / 8c / 8d).
    pub knobs: Vec<(String, KnobSettings)>,
}

impl fmt::Display for Fig8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.avf)?;
        for (name, k) in &self.knobs {
            writeln!(f, "-- knobs for {name} --")?;
            write!(f, "{k}")?;
        }
        Ok(())
    }
}

/// Figure 8 driver.
#[must_use]
pub fn fig8(cfg: &ExperimentConfig) -> Fig8 {
    let machine = MachineConfig::baseline();
    let mut avf = Table::new(
        "Figure 8(b): stressmark AVF of queueing structures per fault-rate config",
        &AVF_COLUMNS,
    );
    let mut knobs = Vec::new();
    for rates in [FaultRates::baseline(), FaultRates::rhc(), FaultRates::edr()] {
        let name = format!("Stressmark:{}", rates.name());
        let sm = stressmark_for(cfg, machine.clone(), rates);
        avf.push(name.clone(), avf_row(&sm.result));
        knobs.push((name, KnobSettings::of(&sm)));
    }
    Fig8 { avf, knobs }
}

/// Figure 9: stressmark re-targeted to the scaled-up Configuration A.
#[derive(Debug, Clone)]
pub struct Fig9 {
    /// Queueing AVF: baseline stressmark vs Config A stressmark (9a).
    pub avf: Table,
    /// Config A knob settings (9b).
    pub knobs: KnobSettings,
}

impl fmt::Display for Fig9 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.avf)?;
        writeln!(f, "-- knobs for Stressmark:ConfigA --")?;
        write!(f, "{}", self.knobs)
    }
}

/// Figure 9 driver.
#[must_use]
pub fn fig9(cfg: &ExperimentConfig) -> Fig9 {
    let base = stressmark_for(cfg, MachineConfig::baseline(), FaultRates::baseline());
    let a = stressmark_for(cfg, MachineConfig::config_a(), FaultRates::baseline());
    let mut avf = Table::new(
        "Figure 9(a): stressmark AVF, Baseline vs Config A",
        &AVF_COLUMNS,
    );
    avf.push("Stressmark:Baseline", avf_row(&base.result));
    avf.push("Stressmark:ConfigA", avf_row(&a.result));
    Fig9 {
        avf,
        knobs: KnobSettings::of(&a),
    }
}

/// Table III: comparison of worst-case core-SER estimation methodologies.
#[derive(Debug, Clone)]
pub struct Table3 {
    /// Columns: Stressmark, Best individual program, Sum of highest
    /// per-structure SER, Raw circuit-level sum, Instantaneous QS bound.
    pub table: Table,
    /// Name of the best individual program per rate configuration.
    pub best_programs: Vec<(String, String)>,
}

impl fmt::Display for Table3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.table)?;
        for (config, name) in &self.best_programs {
            writeln!(f, "  best individual program under {config}: {name}")?;
        }
        Ok(())
    }
}

/// Table III driver: for each fault-rate configuration, compare the
/// stressmark's core SER against (i) the best individual program, (ii) the
/// sum of the highest per-structure SERs across the suite, (iii) the raw
/// circuit-level sum, and (iv) the instantaneous occupancy bound of
/// Section VI.
#[must_use]
pub fn table3(cfg: &ExperimentConfig) -> Table3 {
    let machine = MachineConfig::baseline();
    let sizes = machine.structure_sizes();
    let runs = run_suite(
        &machine,
        &avf_workloads::all(),
        cfg.workload_instructions,
        cfg.threads,
    );
    let core: Vec<Structure> = Structure::ALL
        .iter()
        .copied()
        .filter(|s| matches!(s.class(), StructureClass::Qs | StructureClass::Rf))
        .collect();
    let core_bits: u64 = core.iter().map(|&s| sizes.bits(s)).sum();

    let mut table = Table::new(
        "Table III: worst-case core SER estimation methodologies (units/bit)",
        &[
            "Stressmark",
            "BestProgram",
            "SumHighest",
            "RawSum",
            "InstQSBound",
        ],
    );
    let mut best_programs = Vec::new();
    for rates in [FaultRates::baseline(), FaultRates::rhc(), FaultRates::edr()] {
        let sm = stressmark_for(cfg, machine.clone(), rates.clone());
        let sm_core = sm.result.report.ser(&rates).qs_rf();

        let (best_name, best_core) = runs
            .iter()
            .map(|(w, r)| (w.name().to_owned(), r.report.ser(&rates).qs_rf()))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("suite non-empty");

        // "Sum of highest per-structure SER": per structure, the maximum
        // over all workloads.
        let sum_highest: f64 = core
            .iter()
            .map(|&s| {
                runs.iter()
                    .map(|(_, r)| r.report.ser(&rates).structure_units(s))
                    .max_by(f64::total_cmp)
                    .unwrap_or(0.0)
            })
            .sum::<f64>()
            / core_bits as f64;

        table.push(
            rates.name(),
            vec![
                sm_core,
                best_core,
                sum_highest,
                raw_sum_core(&sizes, &rates),
                instantaneous_qs_bound(&sizes, &rates),
            ],
        );
        best_programs.push((rates.name().to_owned(), best_name));
    }
    Table3 {
        table,
        best_programs,
    }
}

/// The profiles the injection-vs-ACE validation sweeps alongside the
/// stressmark: a memory-bound SPEC proxy, a compute-bound SPEC proxy,
/// and an embedded MiBench kernel.
pub const VALIDATION_PROFILES: [&str; 3] = ["429.mcf", "456.hmmer", "susan"];

/// Cross-validation of ACE-based AVF by statistical fault injection:
/// one campaign per program, stressmark included.
#[derive(Debug, Clone)]
pub struct InjectionValidation {
    /// One campaign report per program.
    pub reports: Vec<CampaignReport>,
}

impl InjectionValidation {
    /// Programs whose ACE estimate lies within the measurement's 95%
    /// CI for every structure that ACE does not bound from above
    /// (i.e. no violations).
    #[must_use]
    pub fn consistent_programs(&self) -> usize {
        self.reports.iter().filter(|r| r.consistent()).count()
    }

    /// Whether every campaign is consistent with ACE analysis being a
    /// sound per-structure upper bound.
    #[must_use]
    pub fn all_consistent(&self) -> bool {
        self.consistent_programs() == self.reports.len()
    }
}

impl fmt::Display for InjectionValidation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.reports {
            writeln!(f, "{r}")?;
        }
        writeln!(
            f,
            "summary: ACE bound holds on {}/{} programs ({} structures within CI overall)",
            self.consistent_programs(),
            self.reports.len(),
            self.reports
                .iter()
                .map(CampaignReport::agreements)
                .sum::<usize>()
        )
    }
}

/// Runs fault-injection campaigns on the paper-baseline stressmark and
/// the [`VALIDATION_PROFILES`] workloads, comparing injection-measured
/// AVF (±95% CI) against the ACE estimate per structure.
///
/// `base` carries the full campaign configuration — budget/cap, seed,
/// threads, instruction budget, and the adaptive knobs (`ci_target`,
/// `batch_size`, `checkpoint_interval`); each program's campaign is a
/// clone of it. With `ci_target` set, every campaign runs the adaptive
/// sequential-sampling engine and stops at the precision target instead
/// of spending the whole cap.
///
/// The stressmark used is the paper's hand-tuned baseline knob setting
/// (no GA search): validation targets the *measurement* machinery, so
/// it wants a representative near-worst-case program, not a fresh
/// search per run.
#[must_use]
pub fn injection_vs_ace(machine: &MachineConfig, base: &CampaignConfig) -> InjectionValidation {
    injection_vs_ace_on(machine, base, &avf_inject::LocalBackend::new(base.threads))
        .expect("the local backend is infallible")
}

/// [`injection_vs_ace`] over an arbitrary campaign execution backend —
/// the same validation sweep, but trials run wherever the backend puts
/// them (in-process thread pool, or remote `serve` workers via
/// `avf-service`'s `RemoteBackend`). With a fixed seed the resulting
/// reports are identical across backends.
///
/// # Errors
///
/// Returns a [`avf_inject::BackendError`] if the backend cannot execute
/// a campaign (unreachable workers, protocol violation).
pub fn injection_vs_ace_on(
    machine: &MachineConfig,
    base: &CampaignConfig,
    backend: &dyn avf_inject::CampaignBackend,
) -> Result<InjectionValidation, avf_inject::BackendError> {
    let stressmark = avf_codegen::generate(
        &avf_codegen::Knobs::paper_baseline(),
        &crate::target_params(machine),
    );
    let mut programs = vec![stressmark.program];
    for name in VALIDATION_PROFILES {
        programs.push(
            avf_workloads::by_name(name)
                .expect("validation profile exists")
                .build(),
        );
    }
    let reports = programs
        .iter()
        .map(|program| Campaign::new(machine, program, base.clone()).run_on(backend))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(InjectionValidation { reports })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_suite_runs_everything_in_parallel() {
        let machine = MachineConfig::baseline();
        let ws = avf_workloads::mibench();
        let results = run_suite(&machine, &ws, 5_000, 4);
        assert_eq!(results.len(), ws.len());
        for (w, r) in &results {
            assert!(r.stats.committed > 0, "{} committed nothing", w.name());
        }
    }

    #[test]
    fn merged_avf_is_bit_weighted() {
        let machine = MachineConfig::baseline();
        let w = &avf_workloads::mibench()[0];
        let r = simulate(&machine, &w.build(), 5_000);
        let lq = merged_avf(&r, &[Structure::LqTag, Structure::LqData]);
        let a = r.report.avf(Structure::LqTag);
        let b = r.report.avf(Structure::LqData);
        assert!(lq >= a.min(b) && lq <= a.max(b));
    }

    #[test]
    fn fig5_produces_history_and_knobs() {
        let cfg = ExperimentConfig::smoke();
        let f = fig5(&cfg);
        assert_eq!(f.convergence.len(), cfg.ga.generations);
        let text = f.to_string();
        assert!(text.contains("Loop Size"));
        assert!(text.contains("gen"));
    }

    #[test]
    fn table3_has_three_rate_rows() {
        let cfg = ExperimentConfig::smoke();
        let t3 = table3(&cfg);
        assert_eq!(t3.table.rows().len(), 3);
        assert_eq!(t3.best_programs.len(), 3);
        // Raw sum must dominate every measured number (it ignores masking).
        for (name, vals) in t3.table.rows() {
            assert!(
                vals[3] >= vals[0] * 0.99,
                "{name}: raw sum must be pessimistic"
            );
        }
    }
}
