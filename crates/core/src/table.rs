//! Minimal fixed-width table rendering for experiment output (the
//! reproduction's stand-in for the paper's bar charts), plus TSV export for
//! external plotting.

use std::fmt;

/// A named-row, named-column numeric table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<(String, Vec<f64>)>,
}

impl Table {
    /// Creates an empty table.
    #[must_use]
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Table {
        Table {
            title: title.into(),
            columns: columns.iter().map(|c| (*c).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the value count does not match the column count.
    pub fn push(&mut self, name: impl Into<String>, values: Vec<f64>) {
        assert_eq!(values.len(), self.columns.len(), "row arity mismatch");
        self.rows.push((name.into(), values));
    }

    /// Table title.
    #[must_use]
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Column labels.
    #[must_use]
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Rows as `(name, values)` pairs.
    #[must_use]
    pub fn rows(&self) -> &[(String, Vec<f64>)] {
        &self.rows
    }

    /// Value at `(row_name, column_name)`, if present.
    #[must_use]
    pub fn get(&self, row: &str, column: &str) -> Option<f64> {
        let c = self.columns.iter().position(|x| x == column)?;
        let r = self.rows.iter().find(|(name, _)| name == row)?;
        r.1.get(c).copied()
    }

    /// Maximum value in a column, with the owning row name.
    #[must_use]
    pub fn column_max(&self, column: &str) -> Option<(String, f64)> {
        let c = self.columns.iter().position(|x| x == column)?;
        self.rows
            .iter()
            .map(|(name, vals)| (name.clone(), vals[c]))
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// Tab-separated rendering (header + rows), for plotting scripts.
    #[must_use]
    pub fn to_tsv(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let _ = write!(out, "name");
        for c in &self.columns {
            let _ = write!(out, "\t{c}");
        }
        let _ = writeln!(out);
        for (name, vals) in &self.rows {
            let _ = write!(out, "{name}");
            for v in vals {
                let _ = write!(out, "\t{v:.6}");
            }
            let _ = writeln!(out);
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name_w = self
            .rows
            .iter()
            .map(|(n, _)| n.len())
            .chain(std::iter::once(4))
            .max()
            .unwrap_or(4)
            .max(self.title.len().min(24));
        writeln!(f, "== {} ==", self.title)?;
        write!(f, "{:<name_w$}", "")?;
        for c in &self.columns {
            write!(f, " {c:>10}")?;
        }
        writeln!(f)?;
        for (name, vals) in &self.rows {
            write!(f, "{name:<name_w$}")?;
            for v in vals {
                write!(f, " {v:>10.3}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push("row1", vec![1.0, 2.0]);
        t.push("row2", vec![3.0, 0.5]);
        t
    }

    #[test]
    fn get_and_max() {
        let t = sample();
        assert_eq!(t.get("row1", "b"), Some(2.0));
        assert_eq!(t.get("rowX", "b"), None);
        assert_eq!(t.get("row1", "z"), None);
        assert_eq!(t.column_max("a"), Some(("row2".to_owned(), 3.0)));
    }

    #[test]
    fn display_contains_all_cells() {
        let s = sample().to_string();
        assert!(s.contains("demo"));
        assert!(s.contains("row1"));
        assert!(s.contains("3.000"));
    }

    #[test]
    fn tsv_round_trip_shape() {
        let tsv = sample().to_tsv();
        let lines: Vec<&str> = tsv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "name\ta\tb");
        assert!(lines[1].starts_with("row1\t"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        sample().push("bad", vec![1.0]);
    }
}
