//! # avf-stressmark
//!
//! The primary contribution of *AVF Stressmark: Towards an Automated
//! Methodology for Bounding the Worst-Case Vulnerability to Soft Errors*
//! (Nair, John & Eeckhout, MICRO 2010), reproduced end to end:
//!
//! * a **stressmark search** ([`generate_stressmark`]) that couples the
//!   knob-driven ACE-preserving code generator (`avf-codegen`) to a genetic
//!   algorithm (`avf-ga`) with simulated SER (`avf-sim` + `avf-ace`) as the
//!   fitness — Figure 2's loop;
//! * pluggable **fitness functions** ([`Fitness`]) so the search re-targets
//!   itself to protected designs (RHC/EDR fault rates) and different
//!   microarchitectures (Config A) without code changes;
//! * closed-form **bounds** ([`instantaneous_qs_bound`], [`raw_sum_core`])
//!   for the Section VI/VII estimation-methodology comparisons;
//! * **experiment drivers** ([`experiments`]) regenerating every figure and
//!   table of the paper's evaluation;
//! * **injection cross-validation** ([`injection_vs_ace`]): parallel
//!   statistical fault-injection campaigns (`avf-inject`) measuring
//!   per-structure AVF independently of the ACE analysis, with 95%
//!   confidence intervals, on the stressmark and representative
//!   workloads.
//!
//! ## Quickstart
//!
//! ```no_run
//! use avf_stressmark::{generate_stressmark, Fitness, SearchConfig};
//! use avf_sim::MachineConfig;
//! use avf_ace::FaultRates;
//!
//! let config = SearchConfig::quick(
//!     MachineConfig::baseline(),
//!     Fitness::overall(FaultRates::baseline()),
//! );
//! let outcome = generate_stressmark(&config).expect("local search cannot fail");
//! println!("worst-case SER ≈ {:.3} units/bit", outcome.score);
//! println!("knobs: {:?}", outcome.stressmark.knobs);
//! ```
//!
//! The GA consumes a pluggable evaluator: `config.backend` selects
//! in-process threads, a `--workers` fleet, or the campaign broker,
//! with bit-identical results at a fixed seed (see [`SearchBackend`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bounds;
pub mod cli;
pub mod experiments;
mod search;
mod table;

pub use avf_ace::{Fitness, FitnessScope};
pub use bounds::{instantaneous_qs_bound, instantaneous_qs_bound_general, raw_sum, raw_sum_core};
pub use experiments::{
    fig3, fig4, fig5, fig6, fig7, fig8, fig9, injection_vs_ace, injection_vs_ace_on, merged_avf,
    run_suite, stressmark_for, table3, ExperimentConfig, Fig5, Fig8, Fig9, InjectionValidation,
    KnobSettings, Table3, VALIDATION_PROFILES,
};
pub use search::{
    evaluate_knobs, generate_stressmark, target_params, SearchBackend, SearchConfig, SearchOutcome,
};
pub use table::Table;
