//! Property-based tests for the ISA's functional semantics.

use avf_isa::{ExecState, Memory, Opcode, Operand, ProgramBuilder, Reg};
use proptest::prelude::*;

fn run_single_alu(op: Opcode, a: i64, b: i64) -> u64 {
    let r1 = Reg::of(1);
    let r2 = Reg::of(2);
    let r3 = Reg::of(3);
    let mut bld = ProgramBuilder::new("prop");
    bld.load_addr(r1, a as u64);
    bld.load_addr(r2, b as u64);
    bld.alu_rr(op, r3, r1, r2);
    bld.halt();
    let p = bld.build().unwrap();
    let mut mem = Memory::new();
    let mut st = ExecState::new(&p, &mut mem);
    while st.step(&p, &mut mem).unwrap() {}
    st.regs[3]
}

proptest! {
    #[test]
    fn add_matches_wrapping_semantics(a: i64, b: i64) {
        prop_assert_eq!(run_single_alu(Opcode::Add, a, b), (a as u64).wrapping_add(b as u64));
    }

    #[test]
    fn sub_matches_wrapping_semantics(a: i64, b: i64) {
        prop_assert_eq!(run_single_alu(Opcode::Sub, a, b), (a as u64).wrapping_sub(b as u64));
    }

    #[test]
    fn mul_matches_wrapping_semantics(a: i64, b: i64) {
        prop_assert_eq!(run_single_alu(Opcode::Mul, a, b), (a as u64).wrapping_mul(b as u64));
    }

    #[test]
    fn bitops_match(a: u64, b: u64) {
        prop_assert_eq!(run_single_alu(Opcode::And, a as i64, b as i64), a & b);
        prop_assert_eq!(run_single_alu(Opcode::Or, a as i64, b as i64), a | b);
        prop_assert_eq!(run_single_alu(Opcode::Xor, a as i64, b as i64), a ^ b);
    }

    #[test]
    fn comparisons_are_boolean(a: i64, b: i64) {
        let lt = run_single_alu(Opcode::Cmplt, a, b);
        let eq = run_single_alu(Opcode::Cmpeq, a, b);
        prop_assert_eq!(lt, u64::from(a < b));
        prop_assert_eq!(eq, u64::from(a == b));
    }

    #[test]
    fn memory_round_trips(addr in 0u64..u64::MAX - 16, value: u64) {
        let mut mem = Memory::new();
        mem.write_u64(addr, value);
        prop_assert_eq!(mem.read_u64(addr), value);
        // 4-byte view of the low half matches.
        prop_assert_eq!(u64::from(mem.read_u32(addr)), value & 0xFFFF_FFFF);
    }

    #[test]
    fn load_addr_is_exact(value: u64) {
        let r1 = Reg::of(1);
        let mut bld = ProgramBuilder::new("prop");
        bld.load_addr(r1, value);
        bld.halt();
        let p = bld.build().unwrap();
        let mut mem = Memory::new();
        let mut st = ExecState::new(&p, &mut mem);
        while st.step(&p, &mut mem).unwrap() {}
        prop_assert_eq!(st.regs[1], value);
    }

    #[test]
    fn zero_register_never_written(v: i16) {
        let mut bld = ProgramBuilder::new("prop");
        bld.push(avf_isa::Inst::alu(Opcode::Add, Reg::ZERO, Reg::ZERO, Operand::Imm(v)));
        bld.halt();
        let p = bld.build().unwrap();
        let mut mem = Memory::new();
        let mut st = ExecState::new(&p, &mut mem);
        while st.step(&p, &mut mem).unwrap() {}
        prop_assert_eq!(st.reg(Reg::ZERO), 0);
    }
}
