//! # avf-isa
//!
//! A compact Alpha-like 64-bit load/store ISA used as the target of the AVF
//! stressmark code generator and as the input language of the cycle-level
//! simulator ([`avf-sim`]).
//!
//! The ISA deliberately mirrors the structural properties the paper's code
//! generator manipulates (Nair, John & Eeckhout, *AVF Stressmark*, MICRO
//! 2010, Section IV):
//!
//! * 32 integer registers with a hardwired zero register ([`Reg::ZERO`]),
//! * single-cycle ALU operations and a long-latency multiply,
//! * 4- and 8-byte loads and stores (operand width drives ACE bit counts),
//! * register/immediate operand forms (the *register usage* knob),
//! * simple conditional branches against zero.
//!
//! Programs carry a data segment so that a generated kernel is fully
//! self-contained (the equivalent of the paper's "dump memory to file" step).
//!
//! ## Example
//!
//! ```
//! use avf_isa::{ProgramBuilder, Reg, Operand, ExecState, Memory};
//!
//! let r1 = Reg::new(1).unwrap();
//! let mut b = ProgramBuilder::new("demo");
//! b.addi(r1, Reg::ZERO, 41);
//! b.addi(r1, r1, 1);
//! b.halt();
//! let program = b.build().unwrap();
//!
//! let mut mem = Memory::new();
//! let mut state = ExecState::new(&program, &mut mem);
//! while state.step(&program, &mut mem).unwrap() {}
//! assert_eq!(state.regs[1], 42);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod disasm;
mod error;
mod exec;
mod inst;
mod memory;
mod opcode;
mod program;
mod reg;
pub mod wire;

pub use builder::{Label, ProgramBuilder};
pub use disasm::listing;
pub use error::IsaError;
pub use exec::{replay_eval, ExecState, Outcome};
pub use inst::{Inst, Operand};
pub use memory::Memory;
pub use opcode::{AccessSize, OpClass, Opcode};
pub use program::{DataSegment, Program};
pub use reg::Reg;

/// Byte address at which instruction memory is mapped.
///
/// Instruction index `i` lives at `TEXT_BASE + 4 * i`; the simulator uses
/// these addresses for I-cache indexing.
pub const TEXT_BASE: u64 = 0x0010_0000;

/// Default byte address at which a program's [`DataSegment`] is mapped.
pub const DATA_BASE: u64 = 0x1000_0000;

/// Converts an instruction index into its byte address in instruction memory.
#[inline]
pub fn text_addr(index: u32) -> u64 {
    TEXT_BASE + 4 * u64::from(index)
}
