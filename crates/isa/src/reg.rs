use std::fmt;

use crate::error::IsaError;

/// An architected integer register, `r0`..`r31`.
///
/// Register 31 is hardwired to zero, as on the Alpha: writes to it are
/// discarded and reads always return zero. The code generator relies on this
/// to express immediate moves without a dedicated opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Number of architected integer registers.
    pub const COUNT: usize = 32;

    /// The hardwired zero register, `r31`.
    pub const ZERO: Reg = Reg(31);

    /// Creates a register from its number.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::InvalidRegister`] if `n >= 32`.
    pub fn new(n: u8) -> Result<Reg, IsaError> {
        if usize::from(n) < Self::COUNT {
            Ok(Reg(n))
        } else {
            Err(IsaError::InvalidRegister(n))
        }
    }

    /// Creates a register from its number, panicking on overflow.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`. Prefer [`Reg::new`] in fallible contexts; this
    /// constructor exists for generator code that works with known-valid
    /// indices.
    #[must_use]
    pub fn of(n: u8) -> Reg {
        Reg::new(n).expect("register number out of range")
    }

    /// The register number, `0..=31`.
    #[inline]
    #[must_use]
    pub fn number(self) -> u8 {
        self.0
    }

    /// The register number as a `usize` index.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }

    /// Whether this is the hardwired zero register.
    #[inline]
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 31
    }

    /// Iterates over every architected register, `r0` through `r31`.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..Self::COUNT as u8).map(Reg)
    }

    /// Iterates over every general-purpose register (excludes `r31`).
    pub fn general() -> impl Iterator<Item = Reg> {
        (0..31u8).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_register_is_r31() {
        assert_eq!(Reg::ZERO.number(), 31);
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::of(0).is_zero());
    }

    #[test]
    fn new_rejects_out_of_range() {
        assert!(Reg::new(31).is_ok());
        assert!(matches!(Reg::new(32), Err(IsaError::InvalidRegister(32))));
    }

    #[test]
    fn all_yields_32_general_yields_31() {
        assert_eq!(Reg::all().count(), 32);
        assert_eq!(Reg::general().count(), 31);
        assert!(Reg::general().all(|r| !r.is_zero()));
    }

    #[test]
    fn display_formats_with_prefix() {
        assert_eq!(Reg::of(7).to_string(), "r7");
        assert_eq!(Reg::ZERO.to_string(), "r31");
    }
}
