use crate::opcode::{OpClass, Opcode};
use crate::reg::Reg;

/// Second source operand of an ALU instruction: a register or a literal.
///
/// The proportion of register operands is the paper's *register usage* knob
/// (Section IV-B, knob 5): reg-reg instructions keep more architected
/// register values ACE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Register operand.
    Reg(Reg),
    /// Immediate literal operand.
    Imm(i16),
}

impl Operand {
    /// The register, if this operand is a register.
    #[must_use]
    pub fn reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Imm(_) => None,
        }
    }

    /// Whether this operand is an immediate.
    #[inline]
    #[must_use]
    pub fn is_imm(self) -> bool {
        matches!(self, Operand::Imm(_))
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<i16> for Operand {
    fn from(v: i16) -> Self {
        Operand::Imm(v)
    }
}

/// A single machine instruction.
///
/// Field roles by class:
///
/// | class  | `dest`      | `src1`          | `src2`            | `disp`/`target` |
/// |--------|-------------|-----------------|-------------------|-----------------|
/// | ALU    | result      | left operand    | right operand     | —               |
/// | Load   | result      | base address    | —                 | displacement    |
/// | Store  | —           | base address    | data register     | displacement    |
/// | Branch | —           | condition       | —                 | target index    |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Inst {
    /// Operation code.
    pub op: Opcode,
    /// Destination register for register-writing opcodes.
    pub dest: Reg,
    /// First source register (base register for memory ops, condition for
    /// branches).
    pub src1: Reg,
    /// Second source operand (data register for stores).
    pub src2: Operand,
    /// Byte displacement for memory operations.
    pub disp: i32,
    /// Absolute instruction index of the branch target.
    pub target: u32,
}

impl Inst {
    /// Creates a three-operand ALU instruction (`dest = src1 op src2`).
    #[must_use]
    pub fn alu(op: Opcode, dest: Reg, src1: Reg, src2: Operand) -> Inst {
        debug_assert!(matches!(op.class(), OpClass::IntShort | OpClass::IntLong));
        Inst {
            op,
            dest,
            src1,
            src2,
            disp: 0,
            target: 0,
        }
    }

    /// Creates a load instruction (`dest = mem[src1 + disp]`).
    #[must_use]
    pub fn load(op: Opcode, dest: Reg, base: Reg, disp: i32) -> Inst {
        debug_assert!(op.is_load());
        Inst {
            op,
            dest,
            src1: base,
            src2: Operand::Reg(Reg::ZERO),
            disp,
            target: 0,
        }
    }

    /// Creates a store instruction (`mem[base + disp] = data`).
    #[must_use]
    pub fn store(op: Opcode, data: Reg, base: Reg, disp: i32) -> Inst {
        debug_assert!(op.is_store());
        Inst {
            op,
            dest: Reg::ZERO,
            src1: base,
            src2: Operand::Reg(data),
            disp,
            target: 0,
        }
    }

    /// Creates a conditional branch against zero (`if cond(src1) goto target`).
    #[must_use]
    pub fn branch(op: Opcode, cond: Reg, target: u32) -> Inst {
        debug_assert!(op.is_branch() && !op.is_unconditional());
        Inst {
            op,
            dest: Reg::ZERO,
            src1: cond,
            src2: Operand::Reg(Reg::ZERO),
            disp: 0,
            target,
        }
    }

    /// Creates an unconditional branch.
    #[must_use]
    pub fn jump(target: u32) -> Inst {
        Inst {
            op: Opcode::Br,
            dest: Reg::ZERO,
            src1: Reg::ZERO,
            src2: Operand::Reg(Reg::ZERO),
            disp: 0,
            target,
        }
    }

    /// Creates a no-operation.
    #[must_use]
    pub fn nop() -> Inst {
        Inst {
            op: Opcode::Nop,
            dest: Reg::ZERO,
            src1: Reg::ZERO,
            src2: Operand::Reg(Reg::ZERO),
            disp: 0,
            target: 0,
        }
    }

    /// Creates the halt instruction.
    #[must_use]
    pub fn halt() -> Inst {
        Inst {
            op: Opcode::Halt,
            dest: Reg::ZERO,
            src1: Reg::ZERO,
            src2: Operand::Reg(Reg::ZERO),
            disp: 0,
            target: 0,
        }
    }

    /// Destination register, if the instruction writes one (writes to `r31`
    /// are architectural no-ops and reported as `None`).
    #[must_use]
    pub fn dest_reg(&self) -> Option<Reg> {
        if self.op.writes_register() && !self.dest.is_zero() {
            Some(self.dest)
        } else {
            None
        }
    }

    /// Source registers read by this instruction (zero register excluded,
    /// since its value is constant and thus never vulnerable).
    #[must_use]
    pub fn src_regs(&self) -> [Option<Reg>; 2] {
        let keep = |r: Reg| if r.is_zero() { None } else { Some(r) };
        match self.op.class() {
            OpClass::IntShort | OpClass::IntLong => {
                [keep(self.src1), self.src2.reg().and_then(keep)]
            }
            OpClass::Load => [keep(self.src1), None],
            OpClass::Store => [keep(self.src1), self.src2.reg().and_then(keep)],
            OpClass::Branch => {
                if self.op.is_unconditional() {
                    [None, None]
                } else {
                    [keep(self.src1), None]
                }
            }
            OpClass::Nop | OpClass::Halt => [None, None],
        }
    }

    /// Data register of a store instruction.
    #[must_use]
    pub fn store_data_reg(&self) -> Option<Reg> {
        if self.op.is_store() {
            self.src2.reg()
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: u8) -> Reg {
        Reg::of(n)
    }

    #[test]
    fn alu_sources_and_dest() {
        let i = Inst::alu(Opcode::Add, r(1), r(2), Operand::Reg(r(3)));
        assert_eq!(i.dest_reg(), Some(r(1)));
        assert_eq!(i.src_regs(), [Some(r(2)), Some(r(3))]);

        let imm = Inst::alu(Opcode::Add, r(1), r(2), Operand::Imm(5));
        assert_eq!(imm.src_regs(), [Some(r(2)), None]);
    }

    #[test]
    fn zero_register_writes_are_discarded() {
        let i = Inst::alu(Opcode::Add, Reg::ZERO, r(2), Operand::Imm(1));
        assert_eq!(i.dest_reg(), None);
    }

    #[test]
    fn store_reads_base_and_data() {
        let s = Inst::store(Opcode::Stq, r(4), r(5), 16);
        assert_eq!(s.dest_reg(), None);
        assert_eq!(s.src_regs(), [Some(r(5)), Some(r(4))]);
        assert_eq!(s.store_data_reg(), Some(r(4)));
    }

    #[test]
    fn load_reads_base_only() {
        let l = Inst::load(Opcode::Ldl, r(6), r(7), -8);
        assert_eq!(l.dest_reg(), Some(r(6)));
        assert_eq!(l.src_regs(), [Some(r(7)), None]);
        assert_eq!(l.store_data_reg(), None);
    }

    #[test]
    fn branch_reads_condition() {
        let b = Inst::branch(Opcode::Bne, r(8), 12);
        assert_eq!(b.src_regs(), [Some(r(8)), None]);
        let j = Inst::jump(3);
        assert_eq!(j.src_regs(), [None, None]);
    }

    #[test]
    fn zero_sources_are_hidden() {
        let i = Inst::alu(Opcode::Add, r(1), Reg::ZERO, Operand::Reg(Reg::ZERO));
        assert_eq!(i.src_regs(), [None, None]);
    }
}
