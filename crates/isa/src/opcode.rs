use std::fmt;

/// Broad functional class of an opcode, used by the pipeline model to route
/// instructions to structures (IQ vs. LQ vs. SQ) and by the ACE analysis to
/// size their vulnerable state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Single-cycle integer ALU operation.
    IntShort,
    /// Long-latency integer operation (multiply).
    IntLong,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Control transfer (conditional or unconditional).
    Branch,
    /// No-operation (un-ACE by definition).
    Nop,
    /// Simulation terminator.
    Halt,
}

/// Width of a memory access in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessSize {
    /// 4-byte (longword) access; on a 64-bit datapath the upper half of the
    /// data field is un-ACE (paper Section IV-A.3).
    Word,
    /// 8-byte (quadword) access.
    Quad,
}

impl AccessSize {
    /// Access width in bytes.
    #[inline]
    #[must_use]
    pub fn bytes(self) -> u64 {
        match self {
            AccessSize::Word => 4,
            AccessSize::Quad => 8,
        }
    }

    /// Access width in bits.
    #[inline]
    #[must_use]
    pub fn bits(self) -> u64 {
        self.bytes() * 8
    }
}

/// Operation codes of the Alpha-like ISA.
///
/// The set is intentionally small: it is exactly the vocabulary the paper's
/// code generator needs (Section IV-B) — short/long-latency ALU ops in
/// register and immediate forms, 4/8-byte loads and stores, and
/// zero-comparing conditional branches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opcode {
    /// 64-bit add.
    Add,
    /// 64-bit subtract.
    Sub,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive-or.
    Xor,
    /// Logical shift left (low 6 bits of operand).
    Sll,
    /// Logical shift right (low 6 bits of operand).
    Srl,
    /// Set-if-less-than (signed), result 0/1.
    Cmplt,
    /// Set-if-equal, result 0/1.
    Cmpeq,
    /// 64-bit multiply (long latency).
    Mul,
    /// Load quadword (8 bytes).
    Ldq,
    /// Load longword (4 bytes, zero-extended).
    Ldl,
    /// Store quadword (8 bytes).
    Stq,
    /// Store longword (low 4 bytes).
    Stl,
    /// Branch if register equals zero.
    Beq,
    /// Branch if register is non-zero.
    Bne,
    /// Branch if register is negative (signed).
    Blt,
    /// Branch if register is non-negative (signed).
    Bge,
    /// Unconditional branch.
    Br,
    /// No-operation.
    Nop,
    /// Stop the (simulated) machine.
    Halt,
}

impl Opcode {
    /// Every opcode, in wire-code order. The position of an opcode in
    /// this table IS its wire code, so new opcodes must be appended.
    pub const ALL: [Opcode; 21] = [
        Opcode::Add,
        Opcode::Sub,
        Opcode::And,
        Opcode::Or,
        Opcode::Xor,
        Opcode::Sll,
        Opcode::Srl,
        Opcode::Cmplt,
        Opcode::Cmpeq,
        Opcode::Mul,
        Opcode::Ldq,
        Opcode::Ldl,
        Opcode::Stq,
        Opcode::Stl,
        Opcode::Beq,
        Opcode::Bne,
        Opcode::Blt,
        Opcode::Bge,
        Opcode::Br,
        Opcode::Nop,
        Opcode::Halt,
    ];

    /// Stable single-byte code used by the wire program codec.
    #[must_use]
    pub fn wire_code(self) -> u8 {
        Opcode::ALL
            .iter()
            .position(|&op| op == self)
            .expect("every opcode is in ALL") as u8
    }

    /// Inverse of [`Opcode::wire_code`].
    #[must_use]
    pub fn from_wire_code(code: u8) -> Option<Opcode> {
        Opcode::ALL.get(usize::from(code)).copied()
    }

    /// The functional class this opcode belongs to.
    #[must_use]
    pub fn class(self) -> OpClass {
        use Opcode::*;
        match self {
            Add | Sub | And | Or | Xor | Sll | Srl | Cmplt | Cmpeq => OpClass::IntShort,
            Mul => OpClass::IntLong,
            Ldq | Ldl => OpClass::Load,
            Stq | Stl => OpClass::Store,
            Beq | Bne | Blt | Bge | Br => OpClass::Branch,
            Nop => OpClass::Nop,
            Halt => OpClass::Halt,
        }
    }

    /// Whether this opcode reads or writes memory.
    #[inline]
    #[must_use]
    pub fn is_mem(self) -> bool {
        matches!(self.class(), OpClass::Load | OpClass::Store)
    }

    /// Whether this opcode is a load.
    #[inline]
    #[must_use]
    pub fn is_load(self) -> bool {
        self.class() == OpClass::Load
    }

    /// Whether this opcode is a store.
    #[inline]
    #[must_use]
    pub fn is_store(self) -> bool {
        self.class() == OpClass::Store
    }

    /// Whether this opcode is a control transfer.
    #[inline]
    #[must_use]
    pub fn is_branch(self) -> bool {
        self.class() == OpClass::Branch
    }

    /// Whether this opcode is an unconditional control transfer.
    #[inline]
    #[must_use]
    pub fn is_unconditional(self) -> bool {
        self == Opcode::Br
    }

    /// Memory access width, if this is a memory opcode.
    #[must_use]
    pub fn access_size(self) -> Option<AccessSize> {
        match self {
            Opcode::Ldq | Opcode::Stq => Some(AccessSize::Quad),
            Opcode::Ldl | Opcode::Stl => Some(AccessSize::Word),
            _ => None,
        }
    }

    /// Whether the opcode produces a register result.
    #[must_use]
    pub fn writes_register(self) -> bool {
        matches!(
            self.class(),
            OpClass::IntShort | OpClass::IntLong | OpClass::Load
        )
    }

    /// Mnemonic string used by the disassembler.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        use Opcode::*;
        match self {
            Add => "add",
            Sub => "sub",
            And => "and",
            Or => "or",
            Xor => "xor",
            Sll => "sll",
            Srl => "srl",
            Cmplt => "cmplt",
            Cmpeq => "cmpeq",
            Mul => "mul",
            Ldq => "ldq",
            Ldl => "ldl",
            Stq => "stq",
            Stl => "stl",
            Beq => "beq",
            Bne => "bne",
            Blt => "blt",
            Bge => "bge",
            Br => "br",
            Nop => "nop",
            Halt => "halt",
        }
    }

    /// All ALU opcodes with single-cycle latency.
    pub const SHORT_ALU: [Opcode; 9] = [
        Opcode::Add,
        Opcode::Sub,
        Opcode::And,
        Opcode::Or,
        Opcode::Xor,
        Opcode::Sll,
        Opcode::Srl,
        Opcode::Cmplt,
        Opcode::Cmpeq,
    ];
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_are_consistent() {
        assert_eq!(Opcode::Add.class(), OpClass::IntShort);
        assert_eq!(Opcode::Mul.class(), OpClass::IntLong);
        assert!(Opcode::Ldl.is_load());
        assert!(Opcode::Stq.is_store());
        assert!(Opcode::Beq.is_branch());
        assert!(!Opcode::Beq.is_unconditional());
        assert!(Opcode::Br.is_unconditional());
    }

    #[test]
    fn access_sizes() {
        assert_eq!(Opcode::Ldq.access_size(), Some(AccessSize::Quad));
        assert_eq!(Opcode::Stl.access_size(), Some(AccessSize::Word));
        assert_eq!(Opcode::Add.access_size(), None);
        assert_eq!(AccessSize::Word.bits(), 32);
        assert_eq!(AccessSize::Quad.bytes(), 8);
    }

    #[test]
    fn register_writers() {
        assert!(Opcode::Add.writes_register());
        assert!(Opcode::Ldq.writes_register());
        assert!(!Opcode::Stq.writes_register());
        assert!(!Opcode::Beq.writes_register());
        assert!(!Opcode::Nop.writes_register());
    }

    #[test]
    fn short_alu_list_is_all_short() {
        for op in Opcode::SHORT_ALU {
            assert_eq!(op.class(), OpClass::IntShort);
        }
    }
}
