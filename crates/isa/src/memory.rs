use std::collections::HashMap;

use crate::wire::{WireError, WireReader, WireWriter};

const PAGE_SHIFT: u64 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const OFFSET_MASK: u64 = (PAGE_SIZE as u64) - 1;

/// Sparse byte-addressable functional memory.
///
/// Pages are allocated on demand and zero-filled, so programs may touch any
/// address. Accesses that straddle a page boundary are handled bytewise.
#[derive(Debug, Clone, Default)]
pub struct Memory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl Memory {
    /// Creates an empty memory in which every byte reads as zero.
    #[must_use]
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Number of pages that have been materialized.
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Reads one byte.
    #[must_use]
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(page) => page[(addr & OFFSET_MASK) as usize],
            None => 0,
        }
    }

    /// Writes one byte, materializing the page if needed.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let page = self
            .pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
        page[(addr & OFFSET_MASK) as usize] = value;
    }

    /// Reads a little-endian 4-byte value.
    #[must_use]
    pub fn read_u32(&self, addr: u64) -> u32 {
        let mut bytes = [0u8; 4];
        self.read_bytes(addr, &mut bytes);
        u32::from_le_bytes(bytes)
    }

    /// Reads a little-endian 8-byte value.
    #[must_use]
    pub fn read_u64(&self, addr: u64) -> u64 {
        let mut bytes = [0u8; 8];
        self.read_bytes(addr, &mut bytes);
        u64::from_le_bytes(bytes)
    }

    /// Writes a little-endian 4-byte value.
    pub fn write_u32(&mut self, addr: u64, value: u32) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Writes a little-endian 8-byte value.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Copies `buf.len()` bytes starting at `addr` into `buf`.
    pub fn read_bytes(&self, addr: u64, buf: &mut [u8]) {
        // Fast path: access within a single page.
        let off = (addr & OFFSET_MASK) as usize;
        if off + buf.len() <= PAGE_SIZE {
            match self.pages.get(&(addr >> PAGE_SHIFT)) {
                Some(page) => buf.copy_from_slice(&page[off..off + buf.len()]),
                None => buf.fill(0),
            }
            return;
        }
        for (i, b) in buf.iter_mut().enumerate() {
            *b = self.read_u8(addr + i as u64);
        }
    }

    /// Order-independent digest of the memory's *semantic* contents.
    ///
    /// Two memories digest equal iff every byte address reads the same
    /// value in both: zero-filled words are skipped, so a page that was
    /// materialized by writing zeroes digests identically to an
    /// untouched page. Used by the fault-injection engine to classify
    /// silent data corruption against a golden run.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut page_ids: Vec<u64> = self.pages.keys().copied().collect();
        page_ids.sort_unstable();
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        let mix = |h: &mut u64, v: u64| {
            for b in v.to_le_bytes() {
                *h = (*h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        for id in page_ids {
            let page = &self.pages[&id];
            for (word_idx, chunk) in page.chunks_exact(8).enumerate() {
                let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
                if word != 0 {
                    mix(&mut h, (id << PAGE_SHIFT) + 8 * word_idx as u64);
                    mix(&mut h, word);
                }
            }
        }
        h
    }

    /// Serializes the resident pages (sorted by page id, so equal
    /// memories encode to equal bytes).
    pub fn encode(&self, w: &mut WireWriter) {
        let mut page_ids: Vec<u64> = self.pages.keys().copied().collect();
        page_ids.sort_unstable();
        w.usize(page_ids.len());
        for id in page_ids {
            w.u64(id);
            w.bytes(&self.pages[&id][..]);
        }
    }

    /// Decodes a memory image written by [`Memory::encode`].
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on truncated input.
    pub fn decode(r: &mut WireReader<'_>) -> Result<Memory, WireError> {
        let n = r.seq_len(8 + PAGE_SIZE)?;
        let mut pages = HashMap::with_capacity(n);
        for _ in 0..n {
            let id = r.u64()?;
            let bytes = r.bytes(PAGE_SIZE)?;
            let page: Box<[u8; PAGE_SIZE]> =
                Box::new(bytes.try_into().expect("exact page-size slice"));
            pages.insert(id, page);
        }
        Ok(Memory { pages })
    }

    /// Writes `buf` starting at `addr`.
    pub fn write_bytes(&mut self, addr: u64, buf: &[u8]) {
        let off = (addr & OFFSET_MASK) as usize;
        if off + buf.len() <= PAGE_SIZE {
            let page = self
                .pages
                .entry(addr >> PAGE_SHIFT)
                .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
            page[off..off + buf.len()].copy_from_slice(buf);
            return;
        }
        for (i, b) in buf.iter().enumerate() {
            self.write_u8(addr + i as u64, *b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_memory_reads_zero() {
        let mem = Memory::new();
        assert_eq!(mem.read_u64(0xdead_beef), 0);
        assert_eq!(mem.resident_pages(), 0);
    }

    #[test]
    fn round_trips_values() {
        let mut mem = Memory::new();
        mem.write_u64(0x1000, 0x0102_0304_0506_0708);
        assert_eq!(mem.read_u64(0x1000), 0x0102_0304_0506_0708);
        assert_eq!(mem.read_u32(0x1000), 0x0506_0708);
        mem.write_u32(0x2000, 0xAABB_CCDD);
        assert_eq!(mem.read_u32(0x2000), 0xAABB_CCDD);
        assert_eq!(mem.read_u64(0x2000), 0xAABB_CCDD);
    }

    #[test]
    fn cross_page_access_works() {
        let mut mem = Memory::new();
        let addr = (PAGE_SIZE as u64) - 3;
        mem.write_u64(addr, u64::MAX);
        assert_eq!(mem.read_u64(addr), u64::MAX);
        assert_eq!(mem.resident_pages(), 2);
    }

    #[test]
    fn digest_tracks_semantic_contents() {
        let mut a = Memory::new();
        let mut b = Memory::new();
        assert_eq!(a.digest(), b.digest(), "empty memories digest equal");
        a.write_u64(0x1000, 7);
        assert_ne!(a.digest(), b.digest());
        b.write_u64(0x1000, 7);
        assert_eq!(a.digest(), b.digest());
        // Materializing a page with zeroes is semantically a no-op.
        b.write_u64(0x9_0000, 0);
        assert_eq!(a.digest(), b.digest());
        // Same value at a different address must differ.
        let mut c = Memory::new();
        c.write_u64(0x1008, 7);
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn encode_round_trips_and_rejects_corrupt_counts() {
        use crate::wire::{WireReader, WireWriter};
        let mut mem = Memory::new();
        mem.write_u64(0x1000, 7);
        mem.write_u64(0x9_0000, 0xABCD);
        let mut w = WireWriter::new();
        mem.encode(&mut w);
        let bytes = w.into_bytes();
        let decoded = Memory::decode(&mut WireReader::new(&bytes)).unwrap();
        assert_eq!(decoded.digest(), mem.digest());

        // A corrupt page count must fail cleanly, not abort allocating.
        let mut w = WireWriter::new();
        w.u64(u64::MAX / 2);
        let corrupt = w.into_bytes();
        assert!(Memory::decode(&mut WireReader::new(&corrupt)).is_err());
    }

    #[test]
    fn little_endian_layout() {
        let mut mem = Memory::new();
        mem.write_u32(0x10, 0x0403_0201);
        assert_eq!(mem.read_u8(0x10), 1);
        assert_eq!(mem.read_u8(0x13), 4);
    }
}
