use crate::error::IsaError;
use crate::inst::Inst;
use crate::memory::Memory;
use crate::DATA_BASE;

/// Initialized data carried with a program.
///
/// The stressmark code generator pre-computes the pointer-chasing chain into
/// the data segment; this is the reproduction's equivalent of the paper's
/// "initialize memory space / dump memory to file" step (Figure 2).
#[derive(Debug, Clone, Default)]
pub struct DataSegment {
    /// Byte address at which `bytes` is loaded.
    pub base: u64,
    /// Raw initialized bytes.
    pub bytes: Vec<u8>,
}

impl DataSegment {
    /// Creates a data segment at the default [`DATA_BASE`].
    #[must_use]
    pub fn new(bytes: Vec<u8>) -> DataSegment {
        DataSegment {
            base: DATA_BASE,
            bytes,
        }
    }

    /// Creates a zero-filled segment of `len` bytes at the default base.
    #[must_use]
    pub fn zeroed(len: usize) -> DataSegment {
        DataSegment::new(vec![0; len])
    }

    /// Writes a little-endian quadword at byte offset `off`.
    ///
    /// # Panics
    ///
    /// Panics if `off + 8` exceeds the segment length.
    pub fn put_u64(&mut self, off: usize, value: u64) {
        self.bytes[off..off + 8].copy_from_slice(&value.to_le_bytes());
    }

    /// Loads the segment into a functional memory.
    pub fn load_into(&self, mem: &mut Memory) {
        mem.write_bytes(self.base, &self.bytes);
    }

    /// Segment length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the segment is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

/// A complete, self-contained program: text, initialized data and entry point.
#[derive(Debug, Clone)]
pub struct Program {
    name: String,
    insts: Vec<Inst>,
    data: DataSegment,
    entry: u32,
}

impl Program {
    /// Assembles a program from parts, validating branch targets.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::EmptyProgram`] for an empty instruction list and
    /// [`IsaError::BranchOutOfRange`] if any branch targets an index outside
    /// the text.
    pub fn new(
        name: impl Into<String>,
        insts: Vec<Inst>,
        data: DataSegment,
        entry: u32,
    ) -> Result<Program, IsaError> {
        if insts.is_empty() {
            return Err(IsaError::EmptyProgram);
        }
        let len = insts.len() as u32;
        for (i, inst) in insts.iter().enumerate() {
            if inst.op.is_branch() && inst.target >= len {
                return Err(IsaError::BranchOutOfRange {
                    at: i as u32,
                    target: inst.target,
                    len,
                });
            }
        }
        if entry >= len {
            return Err(IsaError::PcOutOfRange(entry));
        }
        Ok(Program {
            name: name.into(),
            insts,
            data,
            entry,
        })
    }

    /// Program name (used in reports).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The instruction at `index`, or `None` past the end of text.
    #[must_use]
    pub fn fetch(&self, index: u32) -> Option<&Inst> {
        self.insts.get(index as usize)
    }

    /// All instructions.
    #[must_use]
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Initialized data segment.
    #[must_use]
    pub fn data(&self) -> &DataSegment {
        &self.data
    }

    /// Entry-point instruction index.
    #[must_use]
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// Number of instructions in the text.
    #[must_use]
    pub fn len(&self) -> u32 {
        self.insts.len() as u32
    }

    /// Whether the text is empty (never true for a validated program).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Opcode, Reg};

    #[test]
    fn rejects_empty_program() {
        assert!(matches!(
            Program::new("p", vec![], DataSegment::default(), 0),
            Err(IsaError::EmptyProgram)
        ));
    }

    #[test]
    fn rejects_wild_branch() {
        let insts = vec![Inst::branch(Opcode::Beq, Reg::of(1), 7), Inst::halt()];
        let err = Program::new("p", insts, DataSegment::default(), 0).unwrap_err();
        assert!(matches!(err, IsaError::BranchOutOfRange { target: 7, .. }));
    }

    #[test]
    fn rejects_bad_entry() {
        let insts = vec![Inst::halt()];
        assert!(matches!(
            Program::new("p", insts, DataSegment::default(), 5),
            Err(IsaError::PcOutOfRange(5))
        ));
    }

    #[test]
    fn data_segment_round_trip() {
        let mut seg = DataSegment::zeroed(64);
        seg.put_u64(8, 0x1122_3344_5566_7788);
        let mut mem = Memory::new();
        seg.load_into(&mut mem);
        assert_eq!(mem.read_u64(seg.base + 8), 0x1122_3344_5566_7788);
        assert_eq!(seg.len(), 64);
        assert!(!seg.is_empty());
    }
}
