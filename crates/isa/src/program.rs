use crate::error::IsaError;
use crate::inst::{Inst, Operand};
use crate::memory::Memory;
use crate::opcode::Opcode;
use crate::reg::Reg;
use crate::wire::{WireError, WireReader, WireWriter};
use crate::DATA_BASE;

/// Initialized data carried with a program.
///
/// The stressmark code generator pre-computes the pointer-chasing chain into
/// the data segment; this is the reproduction's equivalent of the paper's
/// "initialize memory space / dump memory to file" step (Figure 2).
#[derive(Debug, Clone, Default)]
pub struct DataSegment {
    /// Byte address at which `bytes` is loaded.
    pub base: u64,
    /// Raw initialized bytes.
    pub bytes: Vec<u8>,
}

impl DataSegment {
    /// Creates a data segment at the default [`DATA_BASE`].
    #[must_use]
    pub fn new(bytes: Vec<u8>) -> DataSegment {
        DataSegment {
            base: DATA_BASE,
            bytes,
        }
    }

    /// Creates a zero-filled segment of `len` bytes at the default base.
    #[must_use]
    pub fn zeroed(len: usize) -> DataSegment {
        DataSegment::new(vec![0; len])
    }

    /// Writes a little-endian quadword at byte offset `off`.
    ///
    /// # Panics
    ///
    /// Panics if `off + 8` exceeds the segment length.
    pub fn put_u64(&mut self, off: usize, value: u64) {
        self.bytes[off..off + 8].copy_from_slice(&value.to_le_bytes());
    }

    /// Loads the segment into a functional memory.
    pub fn load_into(&self, mem: &mut Memory) {
        mem.write_bytes(self.base, &self.bytes);
    }

    /// Segment length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the segment is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

/// A complete, self-contained program: text, initialized data and entry point.
#[derive(Debug, Clone)]
pub struct Program {
    name: String,
    insts: Vec<Inst>,
    data: DataSegment,
    entry: u32,
}

impl Program {
    /// Assembles a program from parts, validating branch targets.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::EmptyProgram`] for an empty instruction list and
    /// [`IsaError::BranchOutOfRange`] if any branch targets an index outside
    /// the text.
    pub fn new(
        name: impl Into<String>,
        insts: Vec<Inst>,
        data: DataSegment,
        entry: u32,
    ) -> Result<Program, IsaError> {
        if insts.is_empty() {
            return Err(IsaError::EmptyProgram);
        }
        let len = insts.len() as u32;
        for (i, inst) in insts.iter().enumerate() {
            if inst.op.is_branch() && inst.target >= len {
                return Err(IsaError::BranchOutOfRange {
                    at: i as u32,
                    target: inst.target,
                    len,
                });
            }
        }
        if entry >= len {
            return Err(IsaError::PcOutOfRange(entry));
        }
        Ok(Program {
            name: name.into(),
            insts,
            data,
            entry,
        })
    }

    /// Program name (used in reports).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The instruction at `index`, or `None` past the end of text.
    #[must_use]
    pub fn fetch(&self, index: u32) -> Option<&Inst> {
        self.insts.get(index as usize)
    }

    /// All instructions.
    #[must_use]
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Initialized data segment.
    #[must_use]
    pub fn data(&self) -> &DataSegment {
        &self.data
    }

    /// Entry-point instruction index.
    #[must_use]
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// Number of instructions in the text.
    #[must_use]
    pub fn len(&self) -> u32 {
        self.insts.len() as u32
    }

    /// Whether the text is empty (never true for a validated program).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Serializes the whole program (name, text, data, entry) into a
    /// wire writer. Programs cross process boundaries as part of a
    /// campaign job specification, so the encoding is self-contained:
    /// the decoder needs nothing but the bytes.
    pub fn encode(&self, w: &mut WireWriter) {
        w.str(&self.name);
        w.usize(self.insts.len());
        for inst in &self.insts {
            w.u8(inst.op.wire_code());
            w.u8(inst.dest.number());
            w.u8(inst.src1.number());
            match inst.src2 {
                Operand::Reg(r) => {
                    w.u8(0);
                    w.u8(r.number());
                }
                Operand::Imm(v) => {
                    w.u8(1);
                    w.i16(v);
                }
            }
            w.i32(inst.disp);
            w.u32(inst.target);
        }
        w.u64(self.data.base);
        w.usize(self.data.bytes.len());
        w.bytes(&self.data.bytes);
        w.u32(self.entry);
    }

    /// Decodes a program written by [`Program::encode`], re-running the
    /// [`Program::new`] validation (branch targets, entry point) so a
    /// corrupted blob cannot smuggle an invalid program into a worker.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on truncation, unknown opcodes or
    /// registers, or a program that fails structural validation.
    pub fn decode(r: &mut WireReader<'_>) -> Result<Program, WireError> {
        let name = r.str()?;
        // An instruction occupies at least 12 bytes on the wire.
        let n_insts = r.seq_len(12)?;
        let reg =
            |n: u8| Reg::new(n).map_err(|_| WireError::Invalid("register number out of range"));
        let mut insts = Vec::with_capacity(n_insts);
        for _ in 0..n_insts {
            let code = r.u8()?;
            let op = Opcode::from_wire_code(code).ok_or(WireError::BadTag(code))?;
            let dest = reg(r.u8()?)?;
            let src1 = reg(r.u8()?)?;
            let src2 = match r.u8()? {
                0 => Operand::Reg(reg(r.u8()?)?),
                1 => Operand::Imm(r.i16()?),
                t => return Err(WireError::BadTag(t)),
            };
            insts.push(Inst {
                op,
                dest,
                src1,
                src2,
                disp: r.i32()?,
                target: r.u32()?,
            });
        }
        let base = r.u64()?;
        let n_data = r.seq_len(1)?;
        let bytes = r.bytes(n_data)?.to_vec();
        let entry = r.u32()?;
        Program::new(name, insts, DataSegment { base, bytes }, entry)
            .map_err(|_| WireError::Invalid("program failed structural validation"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Opcode, Reg};

    #[test]
    fn rejects_empty_program() {
        assert!(matches!(
            Program::new("p", vec![], DataSegment::default(), 0),
            Err(IsaError::EmptyProgram)
        ));
    }

    #[test]
    fn rejects_wild_branch() {
        let insts = vec![Inst::branch(Opcode::Beq, Reg::of(1), 7), Inst::halt()];
        let err = Program::new("p", insts, DataSegment::default(), 0).unwrap_err();
        assert!(matches!(err, IsaError::BranchOutOfRange { target: 7, .. }));
    }

    #[test]
    fn rejects_bad_entry() {
        let insts = vec![Inst::halt()];
        assert!(matches!(
            Program::new("p", insts, DataSegment::default(), 5),
            Err(IsaError::PcOutOfRange(5))
        ));
    }

    #[test]
    fn wire_codec_round_trips() {
        let mut data = DataSegment::zeroed(24);
        data.put_u64(16, 0xABCD);
        let insts = vec![
            Inst::alu(Opcode::Add, Reg::of(1), Reg::of(2), Operand::Imm(-7)),
            Inst::alu(
                Opcode::Xor,
                Reg::of(3),
                Reg::of(1),
                Operand::Reg(Reg::of(2)),
            ),
            Inst::load(Opcode::Ldq, Reg::of(4), Reg::of(3), 16),
            Inst::store(Opcode::Stl, Reg::of(4), Reg::of(3), -8),
            Inst::branch(Opcode::Bne, Reg::of(1), 0),
            Inst::halt(),
        ];
        let p = Program::new("codec-test", insts, data, 0).unwrap();
        let mut w = WireWriter::new();
        p.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let q = Program::decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(q.name(), p.name());
        assert_eq!(q.insts(), p.insts());
        assert_eq!(q.entry(), p.entry());
        assert_eq!(q.data().base, p.data().base);
        assert_eq!(q.data().bytes, p.data().bytes);
    }

    #[test]
    fn wire_codec_rejects_corruption() {
        let insts = vec![Inst::branch(Opcode::Bne, Reg::ZERO, 1), Inst::halt()];
        let p = Program::new("p", insts, DataSegment::default(), 0).unwrap();
        let mut w = WireWriter::new();
        p.encode(&mut w);
        let good = w.into_bytes();

        // Truncation anywhere must error, never panic.
        for cut in [0, 1, good.len() / 2, good.len() - 1] {
            let mut r = WireReader::new(&good[..cut]);
            assert!(Program::decode(&mut r).is_err(), "cut at {cut}");
        }
        // An unknown opcode byte is a typed tag error. The first inst's
        // opcode sits after the name (8-byte len + "p") and the 8-byte
        // instruction count.
        const OP_OFF: usize = 8 + 1 + 8;
        let mut bad = good.clone();
        bad[OP_OFF] = 0xEE;
        assert!(matches!(
            Program::decode(&mut WireReader::new(&bad)),
            Err(WireError::BadTag(0xEE))
        ));
        // Re-validation catches a branch retargeted out of the text:
        // target is the last field of the 13-byte branch encoding.
        let mut wild = good;
        wild[OP_OFF + 9] = 0x7F;
        assert!(Program::decode(&mut WireReader::new(&wild)).is_err());
    }

    #[test]
    fn data_segment_round_trip() {
        let mut seg = DataSegment::zeroed(64);
        seg.put_u64(8, 0x1122_3344_5566_7788);
        let mut mem = Memory::new();
        seg.load_into(&mut mem);
        assert_eq!(mem.read_u64(seg.base + 8), 0x1122_3344_5566_7788);
        assert_eq!(seg.len(), 64);
        assert!(!seg.is_empty());
    }
}
