use crate::error::IsaError;
use crate::inst::{Inst, Operand};
use crate::memory::Memory;
use crate::opcode::{AccessSize, OpClass, Opcode};
use crate::program::Program;
use crate::reg::Reg;
use crate::wire::{WireError, WireReader, WireWriter};

/// Everything the pipeline model needs to know about one executed
/// instruction: its control-flow outcome, effective address, and the value it
/// produced.
///
/// The simulator executes instructions functionally at dispatch (an oracle,
/// SimpleScalar-style) and replays these outcomes through its timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outcome {
    /// Index of the next instruction on the architected path.
    pub next_pc: u32,
    /// For branches: whether the branch was taken.
    pub taken: bool,
    /// For memory operations: the effective byte address.
    pub ea: Option<u64>,
    /// For memory operations: the access width.
    pub size: Option<AccessSize>,
    /// Register result (loads, ALU ops) or store data.
    pub value: u64,
    /// Whether this instruction halts the machine.
    pub halted: bool,
}

impl Outcome {
    /// Serializes the outcome for checkpoint snapshots.
    pub fn encode(&self, w: &mut WireWriter) {
        w.u32(self.next_pc);
        w.bool(self.taken);
        w.opt_u64(self.ea);
        match self.size {
            None => w.u8(0),
            Some(AccessSize::Word) => w.u8(1),
            Some(AccessSize::Quad) => w.u8(2),
        }
        w.u64(self.value);
        w.bool(self.halted);
    }

    /// Decodes an outcome written by [`Outcome::encode`].
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on truncated input or a bad size tag.
    pub fn decode(r: &mut WireReader<'_>) -> Result<Outcome, WireError> {
        Ok(Outcome {
            next_pc: r.u32()?,
            taken: r.bool()?,
            ea: r.opt_u64()?,
            size: match r.u8()? {
                0 => None,
                1 => Some(AccessSize::Word),
                2 => Some(AccessSize::Quad),
                t => return Err(WireError::BadTag(t)),
            },
            value: r.u64()?,
            halted: r.bool()?,
        })
    }
}

/// Architected state of the functional machine: 32 registers and a PC
/// expressed as an instruction index.
#[derive(Debug, Clone)]
pub struct ExecState {
    /// Register file; index 31 always reads zero.
    pub regs: [u64; 32],
    /// Current instruction index.
    pub pc: u32,
    /// Number of instructions executed so far.
    pub retired: u64,
    halted: bool,
}

impl ExecState {
    /// Creates the initial state for `program`, loading its data segment
    /// into `mem`.
    pub fn new(program: &Program, mem: &mut Memory) -> ExecState {
        program.data().load_into(mem);
        ExecState {
            regs: [0; 32],
            pc: program.entry(),
            retired: 0,
            halted: false,
        }
    }

    /// Whether the machine has executed a [`Opcode::Halt`].
    #[must_use]
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Serializes the architected state for checkpoint snapshots.
    pub fn encode(&self, w: &mut WireWriter) {
        for reg in self.regs {
            w.u64(reg);
        }
        w.u32(self.pc);
        w.u64(self.retired);
        w.bool(self.halted);
    }

    /// Decodes state written by [`ExecState::encode`].
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on truncated input.
    pub fn decode(r: &mut WireReader<'_>) -> Result<ExecState, WireError> {
        let mut regs = [0u64; 32];
        for reg in &mut regs {
            *reg = r.u64()?;
        }
        Ok(ExecState {
            regs,
            pc: r.u32()?,
            retired: r.u64()?,
            halted: r.bool()?,
        })
    }

    /// Reads a register (the zero register reads as 0).
    #[inline]
    #[must_use]
    pub fn reg(&self, r: crate::Reg) -> u64 {
        if r.is_zero() {
            0
        } else {
            self.regs[r.index()]
        }
    }

    fn operand(&self, op: Operand) -> u64 {
        match op {
            Operand::Reg(r) => self.reg(r),
            Operand::Imm(v) => v as i64 as u64,
        }
    }

    /// Executes the single instruction at the current PC, updating
    /// architected state and memory, and returns its [`Outcome`].
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::PcOutOfRange`] if the PC has left the text (a
    /// validated program that always loops or halts never does this).
    pub fn exec(&mut self, program: &Program, mem: &mut Memory) -> Result<Outcome, IsaError> {
        let pc = self.pc;
        let inst = *program.fetch(pc).ok_or(IsaError::PcOutOfRange(pc))?;
        let outcome = self.exec_inst(&inst, pc, mem);
        self.pc = outcome.next_pc;
        self.retired += 1;
        self.halted = outcome.halted;
        Ok(outcome)
    }

    /// Executes one step and reports whether the machine is still running.
    ///
    /// # Errors
    ///
    /// Propagates [`IsaError`] from [`ExecState::exec`].
    pub fn step(&mut self, program: &Program, mem: &mut Memory) -> Result<bool, IsaError> {
        if self.halted {
            return Ok(false);
        }
        let out = self.exec(program, mem)?;
        Ok(!out.halted)
    }

    /// Executes `inst` as if it were at index `pc`, without touching the PC
    /// bookkeeping. Used by the simulator's oracle.
    pub fn exec_inst(&mut self, inst: &Inst, pc: u32, mem: &mut Memory) -> Outcome {
        let fall_through = pc + 1;
        let mut out = Outcome {
            next_pc: fall_through,
            taken: false,
            ea: None,
            size: None,
            value: 0,
            halted: false,
        };
        match inst.op.class() {
            OpClass::IntShort | OpClass::IntLong => {
                let a = self.reg(inst.src1);
                let b = self.operand(inst.src2);
                let v = alu_op(inst.op, a, b);
                out.value = v;
                self.write_reg(inst.dest, v);
            }
            OpClass::Load => {
                let ea = self.reg(inst.src1).wrapping_add(inst.disp as i64 as u64);
                let size = inst.op.access_size().expect("load has a size");
                let v = match size {
                    AccessSize::Word => u64::from(mem.read_u32(ea)),
                    AccessSize::Quad => mem.read_u64(ea),
                };
                out.ea = Some(ea);
                out.size = Some(size);
                out.value = v;
                self.write_reg(inst.dest, v);
            }
            OpClass::Store => {
                let ea = self.reg(inst.src1).wrapping_add(inst.disp as i64 as u64);
                let size = inst.op.access_size().expect("store has a size");
                let data = self.operand(inst.src2);
                match size {
                    AccessSize::Word => mem.write_u32(ea, data as u32),
                    AccessSize::Quad => mem.write_u64(ea, data),
                }
                out.ea = Some(ea);
                out.size = Some(size);
                out.value = data;
            }
            OpClass::Branch => {
                let taken = match inst.op {
                    Opcode::Br => true,
                    Opcode::Beq => self.reg(inst.src1) == 0,
                    Opcode::Bne => self.reg(inst.src1) != 0,
                    Opcode::Blt => (self.reg(inst.src1) as i64) < 0,
                    Opcode::Bge => (self.reg(inst.src1) as i64) >= 0,
                    _ => unreachable!("non-branch in branch class"),
                };
                out.taken = taken;
                out.next_pc = if taken { inst.target } else { fall_through };
            }
            OpClass::Nop => {}
            OpClass::Halt => {
                out.halted = true;
                out.next_pc = pc;
            }
        }
        out
    }

    #[inline]
    fn write_reg(&mut self, r: crate::Reg, v: u64) {
        if !r.is_zero() {
            self.regs[r.index()] = v;
        }
    }
}

/// Pure functional re-execution of one instruction with *supplied*
/// source-register values: the micro-op replay oracle's evaluator.
///
/// `src1`/`src2` are the values of the instruction's two source-register
/// slots (aligned with [`Inst::src_regs`]; a slot that is an immediate,
/// the zero register, or unused is ignored — pass anything). Unlike
/// [`ExecState::exec_inst`], nothing is mutated: loads read `mem`, and a
/// store's write is *computed* (effective address and data in the
/// returned [`Outcome`]) but not applied, so a fault-injection engine
/// can first decide whether the replayed micro-op diverges from its
/// original outcome and only then commit the side effect.
#[must_use]
pub fn replay_eval(inst: &Inst, pc: u32, src1: u64, src2: u64, mem: &Memory) -> Outcome {
    let fall_through = pc + 1;
    let mut out = Outcome {
        next_pc: fall_through,
        taken: false,
        ea: None,
        size: None,
        value: 0,
        halted: false,
    };
    let reg_or = |r: Reg, v: u64| if r.is_zero() { 0 } else { v };
    let operand2 = match inst.src2 {
        Operand::Reg(r) => reg_or(r, src2),
        Operand::Imm(v) => v as i64 as u64,
    };
    match inst.op.class() {
        OpClass::IntShort | OpClass::IntLong => {
            out.value = alu_op(inst.op, reg_or(inst.src1, src1), operand2);
        }
        OpClass::Load => {
            let ea = reg_or(inst.src1, src1).wrapping_add(inst.disp as i64 as u64);
            let size = inst.op.access_size().expect("load has a size");
            out.ea = Some(ea);
            out.size = Some(size);
            out.value = match size {
                AccessSize::Word => u64::from(mem.read_u32(ea)),
                AccessSize::Quad => mem.read_u64(ea),
            };
        }
        OpClass::Store => {
            let ea = reg_or(inst.src1, src1).wrapping_add(inst.disp as i64 as u64);
            out.ea = Some(ea);
            out.size = Some(inst.op.access_size().expect("store has a size"));
            out.value = operand2;
        }
        OpClass::Branch => {
            let cond = reg_or(inst.src1, src1);
            let taken = match inst.op {
                Opcode::Br => true,
                Opcode::Beq => cond == 0,
                Opcode::Bne => cond != 0,
                Opcode::Blt => (cond as i64) < 0,
                Opcode::Bge => (cond as i64) >= 0,
                _ => unreachable!("non-branch in branch class"),
            };
            out.taken = taken;
            out.next_pc = if taken { inst.target } else { fall_through };
        }
        OpClass::Nop => {}
        OpClass::Halt => {
            out.halted = true;
            out.next_pc = pc;
        }
    }
    out
}

fn alu_op(op: Opcode, a: u64, b: u64) -> u64 {
    match op {
        Opcode::Add => a.wrapping_add(b),
        Opcode::Sub => a.wrapping_sub(b),
        Opcode::And => a & b,
        Opcode::Or => a | b,
        Opcode::Xor => a ^ b,
        Opcode::Sll => a.wrapping_shl((b & 63) as u32),
        Opcode::Srl => a.wrapping_shr((b & 63) as u32),
        Opcode::Cmplt => u64::from((a as i64) < (b as i64)),
        Opcode::Cmpeq => u64::from(a == b),
        Opcode::Mul => a.wrapping_mul(b),
        _ => unreachable!("non-ALU opcode in alu_op"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DataSegment, ProgramBuilder, Reg};

    fn r(n: u8) -> Reg {
        Reg::of(n)
    }

    fn run(b: ProgramBuilder) -> (ExecState, Memory) {
        let program = b.build().unwrap();
        let mut mem = Memory::new();
        let mut st = ExecState::new(&program, &mut mem);
        for _ in 0..10_000 {
            if !st.step(&program, &mut mem).unwrap() {
                break;
            }
        }
        (st, mem)
    }

    #[test]
    fn arithmetic_and_immediates() {
        let mut b = ProgramBuilder::new("t");
        b.addi(r(1), Reg::ZERO, 10);
        b.addi(r(2), Reg::ZERO, 3);
        b.alu_rr(Opcode::Sub, r(3), r(1), r(2));
        b.alu_rr(Opcode::Mul, r(4), r(3), r(1));
        b.halt();
        let (st, _) = run(b);
        assert_eq!(st.regs[3], 7);
        assert_eq!(st.regs[4], 70);
    }

    #[test]
    fn loads_and_stores() {
        let mut data = DataSegment::zeroed(64);
        data.put_u64(0, 0x1111_2222_3333_4444);
        let base = data.base;
        let mut b = ProgramBuilder::new("t").with_data(data);
        b.load_addr(r(1), base);
        b.ldq(r(2), r(1), 0);
        b.stq(r(2), r(1), 8);
        b.stl(r(2), r(1), 16);
        b.ldl(r(3), r(1), 16);
        b.halt();
        let (st, mem) = run(b);
        assert_eq!(st.regs[2], 0x1111_2222_3333_4444);
        assert_eq!(mem.read_u64(base + 8), 0x1111_2222_3333_4444);
        // 4-byte store truncates; 4-byte load zero-extends.
        assert_eq!(st.regs[3], 0x3333_4444);
    }

    #[test]
    fn loop_with_conditional_branch() {
        let mut b = ProgramBuilder::new("t");
        b.addi(r(1), Reg::ZERO, 5); // counter
        b.addi(r(2), Reg::ZERO, 0); // accumulator
        let top = b.here();
        b.alu_ri(Opcode::Add, r(2), r(2), 2);
        b.alu_ri(Opcode::Sub, r(1), r(1), 1);
        b.bne(r(1), top);
        b.halt();
        let (st, _) = run(b);
        assert_eq!(st.regs[2], 10);
        assert_eq!(st.regs[1], 0);
    }

    #[test]
    fn halt_stops_machine() {
        let mut b = ProgramBuilder::new("t");
        b.addi(r(1), Reg::ZERO, 1);
        b.halt();
        b.addi(r(1), Reg::ZERO, 99); // unreachable
        let (st, _) = run(b);
        assert!(st.is_halted());
        assert_eq!(st.regs[1], 1);
        assert_eq!(st.retired, 2);
    }

    #[test]
    fn comparison_ops() {
        let mut b = ProgramBuilder::new("t");
        b.addi(r(1), Reg::ZERO, -5);
        b.addi(r(2), Reg::ZERO, 5);
        b.alu_rr(Opcode::Cmplt, r(3), r(1), r(2));
        b.alu_rr(Opcode::Cmpeq, r(4), r(1), r(2));
        b.alu_rr(Opcode::Cmpeq, r(5), r(2), r(2));
        b.halt();
        let (st, _) = run(b);
        assert_eq!(st.regs[3], 1);
        assert_eq!(st.regs[4], 0);
        assert_eq!(st.regs[5], 1);
    }

    #[test]
    fn pointer_chase_follows_chain() {
        // data[0] -> base+16 -> base+32 (a 3-hop pointer chain)
        let mut data = DataSegment::zeroed(64);
        let base = data.base;
        data.put_u64(0, base + 16);
        data.put_u64(16, base + 32);
        data.put_u64(32, 0x77);
        let mut b = ProgramBuilder::new("t").with_data(data);
        b.load_addr(r(1), base);
        b.ldq(r(1), r(1), 0);
        b.ldq(r(1), r(1), 0);
        b.ldq(r(1), r(1), 0);
        b.halt();
        let (st, _) = run(b);
        assert_eq!(st.regs[1], 0x77);
    }
}
