//! Minimal binary codec for checkpoint serialization.
//!
//! The fault-injection engine periodically serializes complete pipeline
//! snapshots so a campaign can restore the nearest checkpoint instead of
//! re-simulating the fault-free prefix (and, eventually, ship checkpoints
//! across machines). The container is fully offline, so this is a small
//! hand-rolled little-endian format rather than a serde backend: fixed-width
//! scalars, `u8`-tagged options, and length-prefixed sequences.
//!
//! The format is *internal*: both ends are the same build of this
//! workspace, reconstructing geometry-dependent state from the same
//! `MachineConfig` and `Program`. A leading version byte guards against
//! accidentally mixing checkpoint blobs across incompatible builds.

use std::fmt;

/// Magic number opening every enveloped wire blob ("AVFW").
///
/// Once blobs cross a socket or land on disk, a stale or foreign payload
/// must fail *identifiably* — a magic mismatch means "this is not ours at
/// all", a version mismatch means "ours, but from an incompatible build"
/// — rather than surfacing as a random [`WireError::BadTag`] deep inside
/// the payload.
pub const WIRE_MAGIC: [u8; 4] = *b"AVFW";

/// Format version of every enveloped blob. Bump on any incompatible
/// change to an enveloped payload's layout.
///
/// v3: `JOB_SETUP` no longer embeds the checkpoint store inline — it
/// carries a content hash plus a golden-run mode, with the store (when
/// needed at all) following in a separate `STORE_DATA` frame after a
/// `STORE_NEED` reply.
///
/// v4: the micro-op replay oracle. Snapshot `DynInst` records now carry
/// the fetch-time source-operand values the oracle replays corrupted
/// micro-ops with, `JOB_SETUP` carries the campaign's fault model
/// (trap vs replay), and trial events gained the `ReplayDiverged`
/// outcome code for corrupted entries that decode to architecturally
/// impossible states.
///
/// v5: pre-campaign injection-site pruning. `JOB_SETUP` carries the
/// campaign's prune flag and `JOB_READY` optionally carries the
/// worker-built `PruneMap` (per-target masked-site strata with proof
/// tags), so delegated workers and the driver agree bit-for-bit on the
/// stratified sampling space.
///
/// v6: the campaign broker. New envelope kinds for broker sessions
/// (hello/submit/attach/status/report and campaign-id-tagged `MUX`
/// frames that interleave many campaigns on one socket), a wire codec
/// for complete `CampaignReport`s (requiring `f64` scalar support),
/// and the broker's durable on-disk campaign log records. Frames may
/// additionally carry a keyed-hash authentication tag *outside* the
/// envelope (see `avf-service`'s auth module); the envelope layout
/// itself is unchanged.
///
/// v7: distributed stressmark search. The protocol carries GA fitness
/// jobs, not just injection campaigns: `EVAL_BATCH` ships one
/// generation of genomes (knobs, not programs — each individual is
/// codegen'd worker-side) plus the machine, fault rates, fitness
/// scope, and evaluation budget; `EVAL_RESULT` streams back one
/// individual's score with a cache flag, terminated by the existing
/// `BATCH_DONE` marker.
pub const WIRE_VERSION: u8 = 7;

/// Bytes an envelope occupies on the wire: magic + version + kind.
pub const ENVELOPE_BYTES: usize = 6;

/// Registry of envelope kind bytes, so the payload kinds that cross
/// process boundaries cannot collide.
pub mod kind {
    /// A serialized [`avf-sim`] pipeline snapshot (checkpoint blob).
    pub const SNAPSHOT: u8 = 1;
    /// A campaign job specification (program + machine + store hash).
    pub const JOB_SETUP: u8 = 2;
    /// One batch of planned injection trials.
    pub const TRIAL_BATCH: u8 = 3;
    /// One classified per-trial outcome event.
    pub const TRIAL_EVENT: u8 = 4;
    /// End-of-batch marker carrying the event count for the batch.
    pub const BATCH_DONE: u8 = 5;
    /// A fatal error reported by a campaign worker.
    pub const SERVICE_ERROR: u8 = 6;
    /// Worker already holds the job's checkpoint store (cache hit).
    pub const STORE_HAVE: u8 = 7;
    /// Worker needs the job's checkpoint store (cache miss).
    pub const STORE_NEED: u8 = 8;
    /// A full checkpoint store shipped in response to [`STORE_NEED`].
    pub const STORE_DATA: u8 = 9;
    /// Worker finished job setup (store resolved, golden run known).
    pub const JOB_READY: u8 = 10;
    /// Driver submits a campaign spec to the broker for queued execution.
    pub const BROKER_SUBMIT: u8 = 11;
    /// Broker accepted a submitted campaign (carries its campaign id).
    pub const BROKER_ACCEPTED: u8 = 12;
    /// Broker rejected a submission (typed admission-control reason).
    pub const BROKER_REJECTED: u8 = 13;
    /// Driver asks for a campaign's current state / final report.
    pub const BROKER_ATTACH: u8 = 14;
    /// Broker reports a campaign's queue/progress state.
    pub const BROKER_STATUS: u8 = 15;
    /// Broker delivers a completed campaign's full `CampaignReport`.
    pub const BROKER_REPORT: u8 = 16;
    /// Broker reports that a campaign failed (carries the error text).
    pub const BROKER_FAILED: u8 = 17;
    /// Durable-log record: a campaign spec was accepted into the queue.
    pub const LOG_ACCEPTED: u8 = 18;
    /// Durable-log record: a trial batch of a running campaign finished.
    pub const LOG_PROGRESS: u8 = 19;
    /// Campaign-id-tagged frame multiplexing one campaign's inner
    /// protocol frame onto a shared broker connection.
    pub const MUX: u8 = 20;
    /// First frame of a broker session: tenant name + intent.
    pub const BROKER_HELLO: u8 = 21;
    /// Broker's reply to [`BROKER_HELLO`] (fleet size, session id).
    pub const BROKER_HELLO_ACK: u8 = 22;
    /// One GA generation of genomes to score (machine, rates, scope,
    /// budget, and `(index, genome)` pairs — the worker codegens each
    /// individual from its genome).
    pub const EVAL_BATCH: u8 = 23;
    /// One individual's fitness score (index, score, cache flag).
    pub const EVAL_RESULT: u8 = 24;
}

/// 64-bit FNV-1a content hash with a leading domain byte.
///
/// This keys the worker-side checkpoint-store cache: hashes over
/// different byte streams in different *domains* (store contents vs.
/// delegated-job parameters) must not collide structurally, so every
/// hash mixes in a domain tag first. Not cryptographic — the cache is a
/// bandwidth optimization between trusted peers, and a mismatch is
/// re-verified by the worker before use.
#[must_use]
pub fn content_hash64(domain: u8, bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = (OFFSET ^ u64::from(domain)).wrapping_mul(PRIME);
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(PRIME);
    }
    h
}

/// Error decoding a wire blob: truncated input, a bad tag, an envelope
/// mismatch, or a value inconsistent with the decoder's machine
/// configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the value was complete.
    Truncated,
    /// An enum/option tag byte had an unknown value.
    BadTag(u8),
    /// The envelope does not start with [`WIRE_MAGIC`]: the payload is
    /// not an AVF wire blob at all (garbage, or a foreign protocol).
    BadMagic([u8; 4]),
    /// The envelope carries a format version this build does not speak.
    UnsupportedVersion {
        /// Version byte found in the envelope.
        found: u8,
        /// The version this build encodes and decodes ([`WIRE_VERSION`]).
        expected: u8,
    },
    /// The envelope's kind byte is not the kind the decoder expected
    /// (e.g. a trial-batch frame where a job-setup frame belongs).
    WrongKind {
        /// Kind byte found in the envelope.
        found: u8,
        /// Kind the decoder required.
        expected: u8,
    },
    /// A decoded value is impossible for the decoding configuration
    /// (e.g. an entry index past the structure's geometry).
    Invalid(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "wire input truncated"),
            WireError::BadTag(t) => write!(f, "unknown wire tag {t:#04x}"),
            WireError::BadMagic(m) => write!(f, "bad wire magic {m:02x?} (not an AVF blob)"),
            WireError::UnsupportedVersion { found, expected } => {
                write!(
                    f,
                    "wire format version {found} (this build speaks {expected})"
                )
            }
            WireError::WrongKind { found, expected } => {
                write!(
                    f,
                    "wire envelope kind {found} where kind {expected} was expected"
                )
            }
            WireError::Invalid(what) => write!(f, "invalid wire value: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Append-only encoder over a byte vector.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> WireWriter {
        WireWriter::default()
    }

    /// Finishes encoding and returns the bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Opens a self-describing envelope: [`WIRE_MAGIC`], the build's
    /// [`WIRE_VERSION`], and the payload's `kind` byte (see [`kind`]).
    /// Every blob that can cross a process or machine boundary starts
    /// with one, so stale, truncated, or foreign payloads are rejected
    /// with a typed error before any payload field is touched.
    pub fn envelope(&mut self, kind: u8) {
        self.buf.extend_from_slice(&WIRE_MAGIC);
        self.buf.push(WIRE_VERSION);
        self.buf.push(kind);
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `i16`.
    pub fn i16(&mut self, v: i16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `i32`.
    pub fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f64` as its IEEE-754 bit pattern (little-endian
    /// `u64`), so encode/decode round-trips are exact to the bit.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.bytes(s.as_bytes());
    }

    /// Writes a `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Writes a `usize` as a `u64` (sizes are machine-independent on the
    /// wire).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes an optional `u32` as a tag byte plus payload.
    pub fn opt_u32(&mut self, v: Option<u32>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.u32(x);
            }
        }
    }

    /// Writes an optional `u64` as a tag byte plus payload.
    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.u64(x);
            }
        }
    }

    /// Writes raw bytes (caller is responsible for length framing).
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

/// Cursor-based decoder over a byte slice.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Starts decoding at the beginning of `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> WireReader<'a> {
        WireReader { buf, pos: 0 }
    }

    /// Bytes remaining.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Validates an envelope written by [`WireWriter::envelope`] and
    /// returns its kind byte. Checks run outermost-first, so the error
    /// names the most fundamental mismatch: not-ours ([`WireError::BadMagic`]),
    /// then incompatible build ([`WireError::UnsupportedVersion`]).
    pub fn envelope(&mut self) -> Result<u8, WireError> {
        let magic: [u8; 4] = self.take(4)?.try_into().expect("4");
        if magic != WIRE_MAGIC {
            return Err(WireError::BadMagic(magic));
        }
        let version = self.u8()?;
        if version != WIRE_VERSION {
            return Err(WireError::UnsupportedVersion {
                found: version,
                expected: WIRE_VERSION,
            });
        }
        self.u8()
    }

    /// [`WireReader::envelope`] that additionally requires the kind
    /// byte to be `expected`, failing with [`WireError::WrongKind`].
    pub fn expect_envelope(&mut self, expected: u8) -> Result<(), WireError> {
        let found = self.envelope()?;
        if found != expected {
            return Err(WireError::WrongKind { found, expected });
        }
        Ok(())
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Reads a little-endian `i16`.
    pub fn i16(&mut self) -> Result<i16, WireError> {
        Ok(i16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    /// Reads a little-endian `i32`.
    pub fn i32(&mut self) -> Result<i32, WireError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    /// Reads an `f64` written by [`WireWriter::f64`] (exact bit pattern).
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a string written by [`WireWriter::str`].
    pub fn str(&mut self) -> Result<String, WireError> {
        let len = self.seq_len(1)?;
        let bytes = self.bytes(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Invalid("string is not UTF-8"))
    }

    /// Reads a `bool` byte (0 or 1).
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(WireError::BadTag(t)),
        }
    }

    /// Reads a `usize` written by [`WireWriter::usize`].
    pub fn usize(&mut self) -> Result<usize, WireError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| WireError::Invalid("usize overflow"))
    }

    /// Reads a sequence length and validates it against the bytes left
    /// in the input (each element occupies at least `min_elem_bytes` on
    /// the wire). Decoders must use this before `with_capacity`-style
    /// pre-allocation so a corrupt count field fails with a
    /// [`WireError`] instead of a capacity-overflow abort.
    pub fn seq_len(&mut self, min_elem_bytes: usize) -> Result<usize, WireError> {
        let n = self.usize()?;
        if n > self.remaining() / min_elem_bytes.max(1) {
            return Err(WireError::Truncated);
        }
        Ok(n)
    }

    /// Reads an optional `u32`.
    pub fn opt_u32(&mut self) -> Result<Option<u32>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u32()?)),
            t => Err(WireError::BadTag(t)),
        }
    }

    /// Reads an optional `u64`.
    pub fn opt_u64(&mut self) -> Result<Option<u64>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            t => Err(WireError::BadTag(t)),
        }
    }

    /// Reads exactly `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.take(n)
    }

    /// Asserts the whole input was consumed.
    pub fn finish(self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::Invalid("trailing bytes after decode"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut w = WireWriter::new();
        w.u8(7);
        w.u16(0xBEEF);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 3);
        w.i32(-12345);
        w.bool(true);
        w.usize(99);
        w.opt_u32(None);
        w.opt_u32(Some(5));
        w.opt_u64(Some(1 << 40));
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.i32().unwrap(), -12345);
        assert!(r.bool().unwrap());
        assert_eq!(r.usize().unwrap(), 99);
        assert_eq!(r.opt_u32().unwrap(), None);
        assert_eq!(r.opt_u32().unwrap(), Some(5));
        assert_eq!(r.opt_u64().unwrap(), Some(1 << 40));
        r.finish().unwrap();
    }

    #[test]
    fn f64_round_trips_to_the_bit() {
        let mut w = WireWriter::new();
        for v in [0.0, -0.0, 1.5, f64::MIN_POSITIVE, f64::NAN, 0.123_456_789] {
            w.f64(v);
        }
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        for v in [0.0, -0.0, 1.5, f64::MIN_POSITIVE, f64::NAN, 0.123_456_789] {
            assert_eq!(r.f64().unwrap().to_bits(), v.to_bits());
        }
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_an_error() {
        let mut w = WireWriter::new();
        w.u32(1);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert!(r.u64().is_err());
    }

    #[test]
    fn bad_tags_are_errors() {
        let bytes = [2u8];
        assert_eq!(WireReader::new(&bytes).bool(), Err(WireError::BadTag(2)),);
        let bytes = [9u8, 0, 0, 0, 0];
        assert_eq!(WireReader::new(&bytes).opt_u32(), Err(WireError::BadTag(9)),);
    }

    #[test]
    fn seq_len_bounds_counts_by_remaining_input() {
        let mut w = WireWriter::new();
        w.usize(3);
        w.bytes(&[0u8; 12]); // 3 elements × 4 bytes
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.seq_len(4).unwrap(), 3);

        // A corrupt count far beyond the input must error, not allocate.
        let mut w = WireWriter::new();
        w.u64(u64::MAX - 1);
        let bytes = w.into_bytes();
        assert_eq!(
            WireReader::new(&bytes).seq_len(4),
            Err(WireError::Truncated)
        );
    }

    #[test]
    fn envelope_round_trips() {
        let mut w = WireWriter::new();
        w.envelope(kind::TRIAL_EVENT);
        w.u32(7);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.envelope().unwrap(), kind::TRIAL_EVENT);
        assert_eq!(r.u32().unwrap(), 7);
        r.finish().unwrap();

        let mut r = WireReader::new(&bytes);
        r.expect_envelope(kind::TRIAL_EVENT).unwrap();
        let mut r = WireReader::new(&bytes);
        assert_eq!(
            r.expect_envelope(kind::JOB_SETUP),
            Err(WireError::WrongKind {
                found: kind::TRIAL_EVENT,
                expected: kind::JOB_SETUP,
            })
        );
    }

    #[test]
    fn envelope_rejects_garbage_and_version_skew() {
        // Garbage: not our magic at all.
        let garbage = [0xDEu8, 0xAD, 0xBE, 0xEF, 1, 1];
        assert_eq!(
            WireReader::new(&garbage).envelope(),
            Err(WireError::BadMagic([0xDE, 0xAD, 0xBE, 0xEF]))
        );
        // Truncated: magic cut short.
        assert_eq!(WireReader::new(b"AV").envelope(), Err(WireError::Truncated));
        // A stale blob from a hypothetical older build: right magic,
        // wrong version.
        let mut stale = Vec::from(WIRE_MAGIC);
        stale.push(WIRE_VERSION + 1);
        stale.push(kind::SNAPSHOT);
        assert_eq!(
            WireReader::new(&stale).envelope(),
            Err(WireError::UnsupportedVersion {
                found: WIRE_VERSION + 1,
                expected: WIRE_VERSION,
            })
        );
    }

    #[test]
    fn strings_and_i16_round_trip() {
        let mut w = WireWriter::new();
        w.str("register-chain");
        w.str("");
        w.i16(-300);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.str().unwrap(), "register-chain");
        assert_eq!(r.str().unwrap(), "");
        assert_eq!(r.i16().unwrap(), -300);
        r.finish().unwrap();

        // A corrupt string length far beyond the input must error.
        let mut w = WireWriter::new();
        w.usize(1 << 40);
        let bytes = w.into_bytes();
        assert_eq!(WireReader::new(&bytes).str(), Err(WireError::Truncated));
    }

    #[test]
    fn content_hash_separates_domains_and_inputs() {
        let a = content_hash64(0, b"checkpoint store bytes");
        assert_eq!(a, content_hash64(0, b"checkpoint store bytes"), "stable");
        assert_ne!(a, content_hash64(1, b"checkpoint store bytes"), "domains");
        assert_ne!(a, content_hash64(0, b"checkpoint store bytez"), "content");
        // The canonical FNV-1a offset basis survives the domain mixing
        // (domain 0 of the empty string is a fixed, documented value).
        assert_eq!(
            content_hash64(0, b""),
            0xCBF2_9CE4_8422_2325u64.wrapping_mul(0x0000_0100_0000_01B3)
        );
    }

    #[test]
    fn finish_rejects_trailing_bytes() {
        let bytes = [1u8, 2];
        let mut r = WireReader::new(&bytes);
        r.u8().unwrap();
        assert!(r.finish().is_err());
    }
}
