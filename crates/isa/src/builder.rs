use crate::error::IsaError;
use crate::inst::{Inst, Operand};
use crate::opcode::Opcode;
use crate::program::{DataSegment, Program};
use crate::reg::Reg;

/// A forward- or backward-referenced position in a program under
/// construction. Created by [`ProgramBuilder::label`] or
/// [`ProgramBuilder::here`], consumed by the branch emitters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

/// Incremental assembler for [`Program`]s with label resolution.
///
/// # Example
///
/// ```
/// use avf_isa::{ProgramBuilder, Reg};
///
/// let r1 = Reg::new(1)?;
/// let mut b = ProgramBuilder::new("count");
/// b.addi(r1, Reg::ZERO, 3);
/// let top = b.here();
/// b.subi(r1, r1, 1);
/// b.bne(r1, top);
/// b.halt();
/// let program = b.build()?;
/// assert_eq!(program.len(), 4);
/// # Ok::<(), avf_isa::IsaError>(())
/// ```
#[derive(Debug)]
pub struct ProgramBuilder {
    name: String,
    insts: Vec<Inst>,
    data: DataSegment,
    labels: Vec<Option<u32>>,
    patches: Vec<(usize, Label)>,
    entry: u32,
}

impl ProgramBuilder {
    /// Starts a new program with an empty data segment.
    #[must_use]
    pub fn new(name: impl Into<String>) -> ProgramBuilder {
        ProgramBuilder {
            name: name.into(),
            insts: Vec::new(),
            data: DataSegment::default(),
            labels: Vec::new(),
            patches: Vec::new(),
            entry: 0,
        }
    }

    /// Attaches an initialized data segment.
    #[must_use]
    pub fn with_data(mut self, data: DataSegment) -> ProgramBuilder {
        self.data = data;
        self
    }

    /// Sets the entry point to the *next* emitted instruction.
    pub fn entry_here(&mut self) {
        self.entry = self.insts.len() as u32;
    }

    /// Creates an unbound label for forward references.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the next emitted instruction.
    pub fn bind(&mut self, label: Label) {
        self.labels[label.0] = Some(self.insts.len() as u32);
    }

    /// Creates a label bound to the next emitted instruction.
    pub fn here(&mut self) -> Label {
        let l = self.label();
        self.bind(l);
        l
    }

    /// Index of the next instruction to be emitted.
    #[must_use]
    pub fn position(&self) -> u32 {
        self.insts.len() as u32
    }

    /// Emits a raw instruction.
    pub fn push(&mut self, inst: Inst) {
        self.insts.push(inst);
    }

    /// Emits `dest = src1 op src2` with a register operand.
    pub fn alu_rr(&mut self, op: Opcode, dest: Reg, src1: Reg, src2: Reg) {
        self.push(Inst::alu(op, dest, src1, Operand::Reg(src2)));
    }

    /// Emits `dest = src1 op imm` with an immediate operand.
    pub fn alu_ri(&mut self, op: Opcode, dest: Reg, src1: Reg, imm: i16) {
        self.push(Inst::alu(op, dest, src1, Operand::Imm(imm)));
    }

    /// Emits `dest = src + imm`.
    pub fn addi(&mut self, dest: Reg, src: Reg, imm: i16) {
        self.alu_ri(Opcode::Add, dest, src, imm);
    }

    /// Emits `dest = src - imm`.
    pub fn subi(&mut self, dest: Reg, src: Reg, imm: i16) {
        self.alu_ri(Opcode::Sub, dest, src, imm);
    }

    /// Emits a register-to-register move (`dest = src`).
    pub fn mov(&mut self, dest: Reg, src: Reg) {
        self.alu_rr(Opcode::Or, dest, src, Reg::ZERO);
    }

    /// Emits an 8-byte load `dest = mem[base + disp]`.
    pub fn ldq(&mut self, dest: Reg, base: Reg, disp: i32) {
        self.push(Inst::load(Opcode::Ldq, dest, base, disp));
    }

    /// Emits a 4-byte load `dest = zext(mem32[base + disp])`.
    pub fn ldl(&mut self, dest: Reg, base: Reg, disp: i32) {
        self.push(Inst::load(Opcode::Ldl, dest, base, disp));
    }

    /// Emits an 8-byte store `mem[base + disp] = data`.
    pub fn stq(&mut self, data: Reg, base: Reg, disp: i32) {
        self.push(Inst::store(Opcode::Stq, data, base, disp));
    }

    /// Emits a 4-byte store `mem32[base + disp] = low32(data)`.
    pub fn stl(&mut self, data: Reg, base: Reg, disp: i32) {
        self.push(Inst::store(Opcode::Stl, data, base, disp));
    }

    fn branch_to(&mut self, op: Opcode, cond: Reg, label: Label) {
        self.patches.push((self.insts.len(), label));
        self.push(Inst::branch(op, cond, 0));
    }

    /// Emits `if cond == 0 goto label`.
    pub fn beq(&mut self, cond: Reg, label: Label) {
        self.branch_to(Opcode::Beq, cond, label);
    }

    /// Emits `if cond != 0 goto label`.
    pub fn bne(&mut self, cond: Reg, label: Label) {
        self.branch_to(Opcode::Bne, cond, label);
    }

    /// Emits `if cond < 0 goto label` (signed).
    pub fn blt(&mut self, cond: Reg, label: Label) {
        self.branch_to(Opcode::Blt, cond, label);
    }

    /// Emits `if cond >= 0 goto label` (signed).
    pub fn bge(&mut self, cond: Reg, label: Label) {
        self.branch_to(Opcode::Bge, cond, label);
    }

    /// Emits an unconditional branch to `label`.
    pub fn br(&mut self, label: Label) {
        self.patches.push((self.insts.len(), label));
        self.push(Inst::jump(0));
    }

    /// Emits a no-operation.
    pub fn nop(&mut self) {
        self.push(Inst::nop());
    }

    /// Emits the halt instruction.
    pub fn halt(&mut self) {
        self.push(Inst::halt());
    }

    /// Materializes an arbitrary 64-bit constant into `dest` using a chain of
    /// shift/add instructions (the ISA has only 16-bit immediates).
    pub fn load_addr(&mut self, dest: Reg, value: u64) {
        // Emit 15-bit chunks MSB-first so every immediate is non-negative.
        let mut chunks = Vec::new();
        let mut v = value;
        while v != 0 {
            chunks.push((v & 0x7FFF) as i16);
            v >>= 15;
        }
        if chunks.is_empty() {
            chunks.push(0);
        }
        chunks.reverse();
        self.addi(dest, Reg::ZERO, chunks[0]);
        for &chunk in &chunks[1..] {
            self.alu_ri(Opcode::Sll, dest, dest, 15);
            if chunk != 0 {
                self.alu_ri(Opcode::Or, dest, dest, chunk);
            }
        }
    }

    /// Resolves labels and assembles the final [`Program`].
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::UnboundLabel`] if a referenced label was never
    /// bound, or any validation error from [`Program::new`].
    pub fn build(mut self) -> Result<Program, IsaError> {
        for (at, label) in std::mem::take(&mut self.patches) {
            let target = self.labels[label.0].ok_or(IsaError::UnboundLabel(label.0))?;
            self.insts[at].target = target;
        }
        Program::new(self.name, self.insts, self.data, self.entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExecState, Memory};

    fn r(n: u8) -> Reg {
        Reg::of(n)
    }

    #[test]
    fn forward_labels_resolve() {
        let mut b = ProgramBuilder::new("t");
        let skip = b.label();
        b.addi(r(1), Reg::ZERO, 1);
        b.br(skip);
        b.addi(r(1), Reg::ZERO, 99);
        b.bind(skip);
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.fetch(1).unwrap().target, 3);
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut b = ProgramBuilder::new("t");
        let l = b.label();
        b.br(l);
        assert!(matches!(b.build(), Err(IsaError::UnboundLabel(0))));
    }

    #[test]
    fn load_addr_materializes_various_constants() {
        for value in [
            0u64,
            1,
            0x7FFF,
            0x8000,
            0x1000_0000,
            u64::MAX,
            0xDEAD_BEEF_CAFE_F00D,
        ] {
            let mut b = ProgramBuilder::new("t");
            b.load_addr(r(1), value);
            b.halt();
            let p = b.build().unwrap();
            let mut mem = Memory::new();
            let mut st = ExecState::new(&p, &mut mem);
            while st.step(&p, &mut mem).unwrap() {}
            assert_eq!(st.regs[1], value, "constant {value:#x}");
        }
    }

    #[test]
    fn mov_copies_register() {
        let mut b = ProgramBuilder::new("t");
        b.addi(r(1), Reg::ZERO, 42);
        b.mov(r(2), r(1));
        b.halt();
        let p = b.build().unwrap();
        let mut mem = Memory::new();
        let mut st = ExecState::new(&p, &mut mem);
        while st.step(&p, &mut mem).unwrap() {}
        assert_eq!(st.regs[2], 42);
    }

    #[test]
    fn entry_here_sets_entry_point() {
        let mut b = ProgramBuilder::new("t");
        b.addi(r(1), Reg::ZERO, 99);
        b.entry_here();
        b.addi(r(2), Reg::ZERO, 7);
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.entry(), 1);
        let mut mem = Memory::new();
        let mut st = ExecState::new(&p, &mut mem);
        while st.step(&p, &mut mem).unwrap() {}
        assert_eq!(st.regs[1], 0, "instruction before entry must not run");
        assert_eq!(st.regs[2], 7);
    }
}
