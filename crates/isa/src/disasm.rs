use std::fmt;

use crate::inst::{Inst, Operand};
use crate::opcode::OpClass;
use crate::program::Program;

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "#{v}"),
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.op.class() {
            OpClass::IntShort | OpClass::IntLong => {
                write!(f, "{} {}, {}, {}", self.op, self.dest, self.src1, self.src2)
            }
            OpClass::Load => write!(f, "{} {}, {}({})", self.op, self.dest, self.disp, self.src1),
            OpClass::Store => write!(f, "{} {}, {}({})", self.op, self.src2, self.disp, self.src1),
            OpClass::Branch => {
                if self.op.is_unconditional() {
                    write!(f, "{} @{}", self.op, self.target)
                } else {
                    write!(f, "{} {}, @{}", self.op, self.src1, self.target)
                }
            }
            OpClass::Nop | OpClass::Halt => write!(f, "{}", self.op),
        }
    }
}

/// Renders a whole program as an assembly listing, one instruction per line,
/// prefixed with its index. Useful for debugging generated stressmarks.
#[must_use]
pub fn listing(program: &Program) -> String {
    use fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "; program `{}`, {} insts",
        program.name(),
        program.len()
    );
    for (i, inst) in program.insts().iter().enumerate() {
        let _ = writeln!(out, "{i:6}: {inst}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Opcode, ProgramBuilder, Reg};

    #[test]
    fn formats_each_class() {
        let r1 = Reg::of(1);
        let r2 = Reg::of(2);
        assert_eq!(
            Inst::alu(Opcode::Add, r1, r2, Operand::Imm(4)).to_string(),
            "add r1, r2, #4"
        );
        assert_eq!(
            Inst::load(Opcode::Ldq, r1, r2, 8).to_string(),
            "ldq r1, 8(r2)"
        );
        assert_eq!(
            Inst::store(Opcode::Stl, r1, r2, -4).to_string(),
            "stl r1, -4(r2)"
        );
        assert_eq!(Inst::branch(Opcode::Beq, r1, 3).to_string(), "beq r1, @3");
        assert_eq!(Inst::jump(9).to_string(), "br @9");
        assert_eq!(Inst::nop().to_string(), "nop");
        assert_eq!(Inst::halt().to_string(), "halt");
    }

    #[test]
    fn listing_contains_every_instruction() {
        let mut b = ProgramBuilder::new("demo");
        b.addi(Reg::of(1), Reg::ZERO, 1);
        b.halt();
        let p = b.build().unwrap();
        let text = listing(&p);
        assert!(text.contains("demo"));
        assert!(text.contains("add r1, r31, #1"));
        assert!(text.contains("halt"));
    }
}
