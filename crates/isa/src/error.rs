use std::error::Error;
use std::fmt;

/// Errors produced while constructing or executing programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IsaError {
    /// A register number outside `0..=31`.
    InvalidRegister(u8),
    /// A label was used in a branch but never bound to a position.
    UnboundLabel(usize),
    /// A branch targets an instruction index outside the program.
    BranchOutOfRange {
        /// Index of the offending branch instruction.
        at: u32,
        /// The out-of-range target.
        target: u32,
        /// Program length in instructions.
        len: u32,
    },
    /// The program counter left the program text during execution.
    PcOutOfRange(u32),
    /// The program contains no instructions.
    EmptyProgram,
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::InvalidRegister(n) => write!(f, "invalid register number {n}"),
            IsaError::UnboundLabel(id) => write!(f, "label {id} was never bound"),
            IsaError::BranchOutOfRange { at, target, len } => {
                write!(
                    f,
                    "branch at {at} targets {target} outside program of length {len}"
                )
            }
            IsaError::PcOutOfRange(pc) => write!(f, "program counter {pc} left program text"),
            IsaError::EmptyProgram => write!(f, "program contains no instructions"),
        }
    }
}

impl Error for IsaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let msgs = [
            IsaError::InvalidRegister(40).to_string(),
            IsaError::UnboundLabel(2).to_string(),
            IsaError::BranchOutOfRange {
                at: 1,
                target: 9,
                len: 4,
            }
            .to_string(),
            IsaError::PcOutOfRange(77).to_string(),
            IsaError::EmptyProgram.to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(m.chars().next().unwrap().is_lowercase());
        }
    }
}
