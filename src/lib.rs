//! # avf-suite
//!
//! Workspace-level façade for the AVF stressmark reproduction (Nair, John &
//! Eeckhout, *AVF Stressmark*, MICRO 2010). This crate re-exports the
//! member crates under one roof for the examples and integration tests; see
//! the individual crates for the real APIs:
//!
//! * [`isa`] — the Alpha-like ISA and functional semantics;
//! * [`ace`] — ACE analysis (AVF/SER measurement);
//! * [`sim`] — the cycle-level out-of-order simulator;
//! * [`codegen`] — the knob-driven stressmark code generator;
//! * [`ga`] — the genetic algorithm framework;
//! * [`workloads`] — SPEC CPU2006 / MiBench proxy kernels;
//! * [`inject`] — parallel statistical fault-injection campaigns that
//!   cross-validate the ACE-based AVF numbers;
//! * [`stressmark`] — the end-to-end methodology and experiment drivers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use avf_ace as ace;
pub use avf_codegen as codegen;
pub use avf_ga as ga;
pub use avf_inject as inject;
pub use avf_isa as isa;
pub use avf_sim as sim;
pub use avf_stressmark as stressmark;
pub use avf_workloads as workloads;
