#!/usr/bin/env bash
# Release-mode distributed-campaign smoke: a long-running `serve`
# worker plus `validate --workers` over the wire protocol. Strict CLI
# flags mean a typo here fails the job instead of silently running a
# default campaign; the explicit alive/reap checks mean a crashed
# backgrounded worker can never leave the step green.
set -euo pipefail
. "$(dirname "$0")/lib.sh"

BIN=./target/release/avf-stressmark
[ -x "$BIN" ] || { echo "error: $BIN not built (run cargo build --release --locked first)" >&2; exit 1; }
PORT=7411

"$BIN" serve --listen "127.0.0.1:$PORT" --threads 2 &
SERVE_PID=$!
trap 'kill $SERVE_PID 2>/dev/null || true' EXIT

wait_port "$PORT" "$SERVE_PID"
"$BIN" validate --workers "127.0.0.1:$PORT" \
  --ci-target 0.1 --injections 2000 --seed 42 --instructions 8000
assert_alive "$SERVE_PID" "serve worker"

trap - EXIT
reap "$SERVE_PID" "serve worker"
