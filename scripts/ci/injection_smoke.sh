#!/usr/bin/env bash
# Release-mode end-to-end smoke of the fault-injection subsystem: a
# fixed campaign plus an adaptive sequential-sampling campaign (the
# latter exercises the checkpoint-restore path and the explicit
# unreached-trial classification, not just its debug_assert shadow).
set -euo pipefail

BIN=./target/release/avf-stressmark
[ -x "$BIN" ] || { echo "error: $BIN not built (run cargo build --release --locked first)" >&2; exit 1; }

"$BIN" validate --injections 240 --seed 42 --instructions 8000
"$BIN" validate --ci-target 0.1 --injections 2000 --seed 42 --instructions 8000
