#!/usr/bin/env bash
# Runs the campaign_throughput bench at standard scale, emits the
# per-PR perf artifact (BENCH_pr<N>.json, inj/s medians over 3 runs),
# and prints the delta against the newest *earlier* artifact committed
# under bench-results/ so the perf trajectory is visible per PR.
set -euo pipefail

# Single authority for the PR number: the bench and the artifact name
# both derive from this export.
export AVF_BENCH_PR=4
ARTIFACT="BENCH_pr${AVF_BENCH_PR}.json"

# The bench must run at a scale comparable with the committed history,
# regardless of the workflow-level smoke default. The artifact path is
# absolute because cargo runs bench binaries from the package dir.
export AVF_EXPERIMENT_SCALE=standard
AVF_BENCH_JSON="$PWD/$ARTIFACT" cargo bench -q --locked -p avf-bench --bench campaign_throughput

field() { grep "\"$2\"" "$1" | sed -E 's/[^0-9.]+//g'; }

[ -f "$ARTIFACT" ] || { echo "error: bench did not write $ARTIFACT" >&2; exit 1; }
new_median=$(field "$ARTIFACT" median)
echo "== perf trajectory =="
echo "$ARTIFACT (this run): ${new_median} inj/s median"

prev=$(ls bench-results/BENCH_pr*.json 2>/dev/null | grep -v "/$ARTIFACT$" | sort -V | tail -1 || true)
if [ -z "$prev" ]; then
  echo "no earlier BENCH_*.json committed under bench-results/ — nothing to diff"
  exit 0
fi
old_median=$(field "$prev" median)
old_scale=$(grep '"scale"' "$prev" | sed -E 's/.*: *"([a-z]+)".*/\1/')
if [ "$old_scale" != "standard" ]; then
  echo "$prev was recorded at scale '$old_scale'; skipping the delta (not comparable)"
  exit 0
fi
awk -v new="$new_median" -v old="$old_median" -v prev="$prev" 'BEGIN {
  printf "%s (committed): %.1f inj/s median\n", prev, old
  printf "delta: %+.1f%% (CI runners are noisy; the committed 1-CPU history is the anchor)\n",
         (new - old) / old * 100.0
}'
