#!/usr/bin/env bash
# Runs the campaign_throughput bench at standard scale, emits the
# per-PR perf artifact (BENCH_pr<N>.json, inj/s medians over 3 runs,
# trap + replay series), and prints the delta against the newest
# *earlier* artifact committed under bench-results/ so the perf
# trajectory is visible per PR.
#
# Hard-fail mode: setting AVF_BENCH_MAX_REGRESS=<percent> turns the
# delta from advisory into a gate — a trap-series median more than that
# many percent below the committed history fails the script, so a
# replay-oracle hot-path regression blocks the PR instead of only
# printing a number. Unset (the default for local runs) keeps it
# advisory.
#
# Ratchet mode: when a series *improves* beyond the same noise margin
# (AVF_BENCH_MAX_REGRESS, or 5% when unset), the script prints a WARN
# suggesting the new artifact be committed as the floor — an earned
# speedup the history doesn't record is headroom a later regression can
# silently spend.
set -euo pipefail

# Single authority for the PR number: the bench and the artifact name
# both derive from this export.
export AVF_BENCH_PR=10
ARTIFACT="BENCH_pr${AVF_BENCH_PR}.json"

# The bench must run at a scale comparable with the committed history,
# regardless of the workflow-level smoke default. The artifact path is
# absolute because cargo runs bench binaries from the package dir.
export AVF_EXPERIMENT_SCALE=standard
AVF_BENCH_JSON="$PWD/$ARTIFACT" cargo bench -q --locked -p avf-bench --bench campaign_throughput

field() { grep "\"$2\"" "$1" | sed -E 's/[^0-9.]+//g'; }

[ -f "$ARTIFACT" ] || { echo "error: bench did not write $ARTIFACT" >&2; exit 1; }
new_median=$(field "$ARTIFACT" median)
replay_median=$(field "$ARTIFACT" replay_median || true)
brokered_median=$(field "$ARTIFACT" brokered_median || true)
search_median=$(field "$ARTIFACT" search_gen_per_s || true)
echo "== perf trajectory =="
echo "$ARTIFACT (this run): ${new_median} inj/s median (trap)${replay_median:+, ${replay_median} inj/s median (replay)}${brokered_median:+, ${brokered_median} inj/s median (brokered)}${search_median:+, ${search_median} gen/s median (search)}"

prev=$(ls bench-results/BENCH_pr*.json 2>/dev/null | grep -v "/$ARTIFACT$" | sort -V | tail -1 || true)
if [ -z "$prev" ]; then
  echo "no earlier BENCH_*.json committed under bench-results/ — nothing to diff"
  exit 0
fi
old_median=$(field "$prev" median)
old_scale=$(grep '"scale"' "$prev" | sed -E 's/.*: *"([a-z]+)".*/\1/')
if [ "$old_scale" != "standard" ]; then
  echo "$prev was recorded at scale '$old_scale'; skipping the delta (not comparable)"
  exit 0
fi
max_regress="${AVF_BENCH_MAX_REGRESS:-}"
gate_series() { # $1 = label, $2 = new median, $3 = committed median
  awk -v label="$1" -v new="$2" -v old="$3" -v max="$max_regress" -v art="$ARTIFACT" 'BEGIN {
    delta = (new - old) / old * 100.0
    printf "%s delta: %+.1f%% (CI runners are noisy; the committed 1-CPU history is the anchor)\n",
           label, delta
    if (max != "" && delta < -max) {
      printf "FAIL: %s-series median regressed %.1f%%, beyond the AVF_BENCH_MAX_REGRESS=%s%% gate\n",
             label, -delta, max
      exit 1
    }
    if (max != "") {
      printf "OK: %s series within the %s%% regression gate\n", label, max
    }
    # Ratchet: an improvement beyond the same noise margin deserves a
    # new committed floor, or the gain is unprotected headroom.
    noise = (max != "") ? max + 0 : 5
    if (delta > noise) {
      printf "WARN: %s-series median improved %.1f%% beyond the %.0f%% noise margin — ", label, delta, noise
      printf "commit bench-results/%s to ratchet the floor up\n", art
    }
  }'
}
echo "$prev (committed): ${old_median} inj/s median (trap)"
gate_series trap "$new_median" "$old_median"
# The replay oracle runs only under --fault-model replay, so its hot
# path (field decode + the in-flight walk) is invisible to the trap
# series — gate the replay series too once the history carries it.
old_replay=$(field "$prev" replay_median || true)
if [ -n "$old_replay" ] && [ -n "$replay_median" ]; then
  echo "$prev (committed): ${old_replay} inj/s median (replay)"
  gate_series replay "$replay_median" "$old_replay"
else
  echo "no committed replay_median to diff against (first replay-series artifact)"
fi
# The brokered series prices the driver → broker → worker relay path
# (MUX wrapping, scheduler grants, the relay copy); a regression there
# is invisible to both in-process series, so gate it separately once
# the history carries it.
old_brokered=$(field "$prev" brokered_median || true)
if [ -n "$old_brokered" ] && [ -n "$brokered_median" ]; then
  echo "$prev (committed): ${old_brokered} inj/s median (brokered)"
  gate_series brokered "$brokered_median" "$old_brokered"
else
  echo "no committed brokered_median to diff against (first brokered-series artifact)"
fi
# The search series times the GA loop (codegen + simulate + memoized
# elite re-scoring per generation); a regression there is invisible to
# the campaign series, so gate it separately once the history carries
# it.
old_search=$(field "$prev" search_gen_per_s || true)
if [ -n "$old_search" ] && [ -n "$search_median" ]; then
  echo "$prev (committed): ${old_search} gen/s median (search)"
  gate_series search "$search_median" "$old_search"
else
  echo "no committed search_gen_per_s to diff against (first search-series artifact)"
fi
