#!/usr/bin/env bash
# Shared helpers for the CI smoke scripts. Source, don't execute.

# Waits until TCP $1 on 127.0.0.1 accepts, while PID $2 is still alive.
wait_port() {
  local port=$1 pid=$2 i
  for i in $(seq 1 100); do
    if ! kill -0 "$pid" 2>/dev/null; then
      echo "error: serve worker (pid $pid) exited before accepting on port $port" >&2
      return 1
    fi
    if (exec 3<>"/dev/tcp/127.0.0.1/$port") 2>/dev/null; then
      exec 3>&- 3<&-
      return 0
    fi
    sleep 0.1
  done
  echo "error: port $port never came up" >&2
  return 1
}

# Asserts a backgrounded serve worker is still alive — a worker that
# crashed mid-campaign must fail the step even if the client somehow
# exited zero.
assert_alive() {
  local pid=$1 name=$2
  if ! kill -0 "$pid" 2>/dev/null; then
    # Reap it so the real exit status lands in the log.
    local status=0
    wait "$pid" || status=$?
    echo "error: $name (pid $pid) died during the smoke (exit $status)" >&2
    return 1
  fi
}

# Terminates a backgrounded serve worker and checks it died from *our*
# signal (143 = SIGTERM), not from an earlier failure of its own.
reap() {
  local pid=$1 name=$2 status=0
  kill "$pid" 2>/dev/null || true
  wait "$pid" || status=$?
  if [ "$status" -ne 0 ] && [ "$status" -ne 143 ]; then
    echo "error: $name (pid $pid) exited $status, not via our SIGTERM" >&2
    return 1
  fi
}
