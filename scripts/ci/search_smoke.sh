#!/usr/bin/env bash
# Release-mode distributed-search smoke: two authenticated `serve`
# workers score GA generations for `search --workers`, and the full
# report (knobs, SER breakdown, per-generation history) must be
# bit-identical to the same-seed local run — scores are pure functions
# of (machine, fitness, budget, genome), so the venue may never leak
# into the result. The worker log must also show the genome cache
# taking hits: elite genomes re-scored across generations are cache
# hits, not re-simulations.
set -euo pipefail
. "$(dirname "$0")/lib.sh"

BIN=./target/release/avf-stressmark
[ -x "$BIN" ] || { echo "error: $BIN not built (run cargo build --release --locked first)" >&2; exit 1; }

W1_PORT=7711
W2_PORT=7712

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

# One shared key for the fleet, as --auth-key-file documents.
od -An -tx1 -N16 /dev/urandom | tr -d ' \n' > "$WORK/fleet.key"

"$BIN" serve --listen "127.0.0.1:$W1_PORT" --threads 1 --auth-key-file "$WORK/fleet.key" \
  2> "$WORK/worker1.log" &
W1_PID=$!
"$BIN" serve --listen "127.0.0.1:$W2_PORT" --threads 1 --auth-key-file "$WORK/fleet.key" \
  2> "$WORK/worker2.log" &
W2_PID=$!
trap 'kill $W1_PID $W2_PID 2>/dev/null || true; rm -rf "$WORK"' EXIT
wait_port "$W1_PORT" "$W1_PID"
wait_port "$W2_PORT" "$W2_PID"

SEARCH_ARGS="--population 8 --generations 6 --eval 20000 --final 100000 --seed 42"

# The local reference at the same seed.
"$BIN" search $SEARCH_ARGS --threads 2 > "$WORK/local.txt"

# The same search fanned out across the keyed fleet.
"$BIN" search $SEARCH_ARGS \
  --workers "127.0.0.1:$W1_PORT,127.0.0.1:$W2_PORT" \
  --auth-key-file "$WORK/fleet.key" > "$WORK/remote.txt"
assert_alive "$W1_PID" "worker 1"
assert_alive "$W2_PID" "worker 2"

if ! diff "$WORK/local.txt" "$WORK/remote.txt"; then
  echo "error: distributed search diverged from the local same-seed run" >&2
  exit 1
fi
echo "ok: 2-worker search report is bit-identical to the local run"

# Elite genomes survive into the next generation and are re-submitted;
# the worker-side genome cache must serve those re-evaluations.
if ! grep -qh "fitness HIT (cache)" "$WORK/worker1.log" "$WORK/worker2.log"; then
  echo "error: no worker cache hits — elite re-evaluations were re-simulated" >&2
  grep -h "fitness" "$WORK/worker1.log" "$WORK/worker2.log" | tail -20 >&2 || true
  exit 1
fi
echo "ok: worker genome cache served elite re-evaluations"

trap 'rm -rf "$WORK"' EXIT
reap "$W1_PID" "worker 1"
reap "$W2_PID" "worker 2"
