#!/usr/bin/env bash
# Fidelity gate for the micro-op replay oracle (release mode).
#
# Runs the injection-vs-ACE validation sweep twice at a fixed seed —
# once with the coarse trap fault model, once with the replay oracle —
# and asserts the two properties the oracle exists for:
#
#   1. SOUNDNESS: under `--fault-model replay`, no structure's measured
#      AVF exceeds its ACE bound by more than the measurement's 95% CI
#      half-width, on any program. (The binary itself already fails on a
#      statistical Violation verdict; this is the stricter campaign-level
#      check the acceptance criterion names.)
#   2. FIDELITY: the measured-vs-ACE gap, summed across the sweep's
#      programs, is strictly smaller under replay than under trap on the
#      ROB and the IQ — the two structures whose coarse
#      control-corruption-is-DUE model the oracle replaces.
#
# Both sweeps are deterministic functions of (seed, budgets, code), so
# the comparison is exactly reproducible; a regression in either
# property fails the job.
set -euo pipefail

BIN=./target/release/avf-stressmark
[ -x "$BIN" ] || { echo "error: $BIN not built (run cargo build --release --locked first)" >&2; exit 1; }

INJECTIONS=${AVF_FIDELITY_INJECTIONS:-2400}
INSTRUCTIONS=${AVF_FIDELITY_INSTRUCTIONS:-15000}
SEED=${AVF_FIDELITY_SEED:-42}

run_sweep() {
  local model=$1 out=$2
  echo "== validation sweep: --fault-model $model ($INJECTIONS inj, $INSTRUCTIONS instrs, seed $SEED) =="
  "$BIN" validate --fault-model "$model" --injections "$INJECTIONS" \
    --instructions "$INSTRUCTIONS" --seed "$SEED" | tee "$out"
}

TRAP_OUT=$(mktemp)
REPLAY_OUT=$(mktemp)
trap 'rm -f "$TRAP_OUT" "$REPLAY_OUT"' EXIT

run_sweep trap "$TRAP_OUT"
run_sweep replay "$REPLAY_OUT"

# Per-structure table rows look like:
#   ROB   300  218  54  24  4  0.2733 [0.2260, 0.3264]  0.8055  0.5321  bounded
# fields: 1 name, 2 trials, 3 masked, 4 sdc, 5 due, 6 divg, 7 inj-AVF,
#         8 "[lo," 9 "hi]", 10 ACE-AVF, 11 gap, 12 verdict.

echo "== soundness: replay measured AVF vs ACE bound + CI half-width =="
awk '
  /^(ROB|IQ|LQ|SQ|RF|DL1|L2|DTLB) / {
    measured = $7; ace = $10
    lo = $8; gsub(/[\[,]/, "", lo)
    hi = $9; gsub(/[\]]/, "", hi)
    half = (hi - lo) / 2.0
    if (measured > ace + half + 1e-9) {
      printf "FAIL: %s measured %.4f exceeds ACE %.4f + half-width %.4f\n",
             $1, measured, ace, half
      bad = 1
    }
    rows++
  }
  END {
    if (rows == 0) { print "FAIL: no structure rows parsed"; exit 1 }
    if (bad) exit 1
    printf "OK: ACE bound + half-width holds on all %d structure rows\n", rows
  }
' "$REPLAY_OUT"

echo "== fidelity: replay must strictly narrow the ROB and IQ gaps =="
gap_sum() { # $1 = file, $2 = structure
  awk -v s="$2" '$1 == s { sum += ($11 < 0 ? -$11 : $11); n++ }
                 END { if (n == 0) { print "nan"; exit 1 } printf "%.6f\n", sum }' "$1"
}
status=0
for s in ROB IQ; do
  t=$(gap_sum "$TRAP_OUT" "$s")
  r=$(gap_sum "$REPLAY_OUT" "$s")
  if awk -v t="$t" -v r="$r" 'BEGIN { exit !(r < t) }'; then
    echo "OK: $s gap sum narrowed: trap $t -> replay $r"
  else
    echo "FAIL: $s gap sum did not narrow: trap $t -> replay $r"
    status=1
  fi
done
exit "$status"
