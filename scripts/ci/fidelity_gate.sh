#!/usr/bin/env bash
# Fidelity gate for the micro-op replay oracle (release mode).
#
# Runs the injection-vs-ACE validation sweep twice at a fixed seed —
# once with the coarse trap fault model, once with the replay oracle —
# and asserts the two properties the oracle exists for:
#
#   1. SOUNDNESS: under `--fault-model replay`, no structure's measured
#      AVF exceeds its ACE bound by more than the measurement's 95% CI
#      half-width, on any program. (The binary itself already fails on a
#      statistical Violation verdict; this is the stricter campaign-level
#      check the acceptance criterion names.)
#   2. FIDELITY: the measured-vs-ACE gap, summed across the sweep's
#      programs, is strictly smaller under replay than under trap on the
#      ROB and the IQ — the two structures whose coarse
#      control-corruption-is-DUE model the oracle replaces.
#
# Both sweeps are deterministic functions of (seed, budgets, code), so
# the comparison is exactly reproducible; a regression in either
# property fails the job.
set -euo pipefail

BIN=./target/release/avf-stressmark
[ -x "$BIN" ] || { echo "error: $BIN not built (run cargo build --release --locked first)" >&2; exit 1; }

INJECTIONS=${AVF_FIDELITY_INJECTIONS:-2400}
INSTRUCTIONS=${AVF_FIDELITY_INSTRUCTIONS:-15000}
SEED=${AVF_FIDELITY_SEED:-42}

run_sweep() {
  local model=$1 out=$2
  echo "== validation sweep: --fault-model $model ($INJECTIONS inj, $INSTRUCTIONS instrs, seed $SEED) =="
  "$BIN" validate --fault-model "$model" --injections "$INJECTIONS" \
    --instructions "$INSTRUCTIONS" --seed "$SEED" | tee "$out"
}

TRAP_OUT=$(mktemp)
REPLAY_OUT=$(mktemp)
PRUNE_OFF_OUT=$(mktemp)
PRUNE_ON_OUT=$(mktemp)
AUDIT_OUT=$(mktemp)
trap 'rm -f "$TRAP_OUT" "$REPLAY_OUT" "$PRUNE_OFF_OUT" "$PRUNE_ON_OUT" "$AUDIT_OUT"' EXIT

run_sweep trap "$TRAP_OUT"
run_sweep replay "$REPLAY_OUT"

# Per-structure table rows look like:
#   ROB   300  218  54  24  4  0.2733 [0.2260, 0.3264]  0.8055  0.5321  bounded
# fields: 1 name, 2 trials, 3 masked, 4 sdc, 5 due, 6 divg, 7 inj-AVF,
#         8 "[lo," 9 "hi]", 10 ACE-AVF, 11 gap, 12 verdict.

echo "== soundness: replay measured AVF vs ACE bound + CI half-width =="
awk '
  /^(ROB|IQ|LQ|SQ|RF|DL1|L2|DTLB) / {
    measured = $7; ace = $10
    lo = $8; gsub(/[\[,]/, "", lo)
    hi = $9; gsub(/[\]]/, "", hi)
    half = (hi - lo) / 2.0
    if (measured > ace + half + 1e-9) {
      printf "FAIL: %s measured %.4f exceeds ACE %.4f + half-width %.4f\n",
             $1, measured, ace, half
      bad = 1
    }
    rows++
  }
  END {
    if (rows == 0) { print "FAIL: no structure rows parsed"; exit 1 }
    if (bad) exit 1
    printf "OK: ACE bound + half-width holds on all %d structure rows\n", rows
  }
' "$REPLAY_OUT"

echo "== fidelity: replay must strictly narrow the ROB and IQ gaps =="
gap_sum() { # $1 = file, $2 = structure
  awk -v s="$2" '$1 == s { sum += ($11 < 0 ? -$11 : $11); n++ }
                 END { if (n == 0) { print "nan"; exit 1 } printf "%.6f\n", sum }' "$1"
}
status=0
for s in ROB IQ; do
  t=$(gap_sum "$TRAP_OUT" "$s")
  r=$(gap_sum "$REPLAY_OUT" "$s")
  if awk -v t="$t" -v r="$r" 'BEGIN { exit !(r < t) }'; then
    echo "OK: $s gap sum narrowed: trap $t -> replay $r"
  else
    echo "FAIL: $s gap sum did not narrow: trap $t -> replay $r"
    status=1
  fi
done

# -- Pre-campaign site pruning ---------------------------------------
#
# The stratified estimator must (a) still respect the ACE bound — the
# pruned strata are credited as exact zeros, never as evidence against
# the analysis — and (b) reach the same adaptive precision target with
# at least 20% fewer executed trials across the sweep. A third, cheaper
# sweep runs `--prune audit`, which re-injects a deterministic sample
# of the pruned sites and makes the binary hard-fail on any non-masked
# observation — so its exit code is itself the soundness check.

PRUNE_CI=${AVF_PRUNE_CI_TARGET:-0.05}
PRUNE_CAP=${AVF_PRUNE_CAP:-4000}
PRUNE_MIN_SAVE=${AVF_PRUNE_MIN_SAVE_PCT:-20}

run_pruned_sweep() {
  local prune=$1 ci=$2 out=$3
  echo "== adaptive sweep: --prune $prune (ci-target $ci, cap $PRUNE_CAP, seed $SEED) =="
  "$BIN" validate --fault-model replay --prune "$prune" --ci-target "$ci" \
    --injections "$PRUNE_CAP" --instructions "$INSTRUCTIONS" --seed "$SEED" | tee "$out"
}

run_pruned_sweep off "$PRUNE_CI" "$PRUNE_OFF_OUT"
run_pruned_sweep on "$PRUNE_CI" "$PRUNE_ON_OUT"

# Stratified strata converge on far fewer residual trials, so the
# half-width heuristic used for the unpruned sweep above is
# miscalibrated here (tiny strata can stop with the point estimate on
# the interval's edge, and 32 simultaneous 95% comparisons expect ~1
# borderline false flag per sweep). The calibrated test is the
# binary's own verdict column — a one-sided 99.5% Wilson test with a
# rare-event guard (`TargetReport::verdict`) — scaled by the residual
# mass, so the gate asserts no pruned row flags it.
echo "== pruning soundness: no VIOLATION verdict on any pruned row =="
awk '
  /^(ROB|IQ|LQ|SQ|RF|DL1|L2|DTLB) / {
    if ($12 == "VIOLATION") {
      printf "FAIL: %s stratified measurement flags a soundness violation\n", $1
      bad = 1
    }
    rows++
  }
  END {
    if (rows == 0) { print "FAIL: no structure rows parsed"; exit 1 }
    if (bad) exit 1
    printf "OK: no soundness violation on any of %d pruned structure rows\n", rows
  }
' "$PRUNE_ON_OUT"
if ! grep -q "ACE bound holds on 4/4 programs" "$PRUNE_ON_OUT"; then
  echo "FAIL: pruned sweep summary did not affirm the ACE bound on all programs"
  status=1
fi

echo "== pruning efficiency: trials spent must drop >=${PRUNE_MIN_SAVE}% at ci-target $PRUNE_CI =="
trials_sum() { # $1 = file
  awk '/^(ROB|IQ|LQ|SQ|RF|DL1|L2|DTLB) / { sum += $2 } END { print sum + 0 }' "$1"
}
OFF_TRIALS=$(trials_sum "$PRUNE_OFF_OUT")
ON_TRIALS=$(trials_sum "$PRUNE_ON_OUT")
if awk -v off="$OFF_TRIALS" -v on="$ON_TRIALS" -v pct="$PRUNE_MIN_SAVE" \
     'BEGIN { exit !(off > 0 && on <= off * (100 - pct) / 100.0) }'; then
  echo "OK: pruning cut trials $OFF_TRIALS -> $ON_TRIALS at the same precision target"
else
  echo "FAIL: pruning saved too little: $OFF_TRIALS -> $ON_TRIALS (need >=${PRUNE_MIN_SAVE}%)"
  status=1
fi

echo "== pruning audit: re-inject pruned sites, every one must be masked =="
# Looser target: the audit stream size is fixed per structure, so this
# sweep only needs to reach the audit phase, not deep convergence.
run_pruned_sweep audit 0.2 "$AUDIT_OUT"
if grep -q "audit trial(s), all masked" "$AUDIT_OUT"; then
  echo "OK: audit re-injection observed only masked outcomes"
else
  echo "FAIL: audit sweep did not report its all-masked verdict"
  status=1
fi

exit "$status"
