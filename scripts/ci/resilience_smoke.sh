#!/usr/bin/env bash
# Release-mode resilience smoke of the distributed campaign service.
#
# Two `serve` workers; worker B is armed with `--die-mid-batch 1`, so
# every campaign connection to it aborts midway through its second
# batch — a deterministic stand-in for a worker killed mid-campaign.
# The two-worker campaign must (a) complete, (b) re-dispatch the dead
# worker's trials, and (c) print a report bit-identical to a
# single-worker run at the same seed modulo venue metadata (worker
# count, inj/s, the re-dispatch note). A second single-worker campaign
# then proves the checkpoint-store cache: its JOB_SETUPs must log HAVE
# on the worker.
set -euo pipefail
. "$(dirname "$0")/lib.sh"

BIN=./target/release/avf-stressmark
[ -x "$BIN" ] || { echo "error: $BIN not built (run cargo build --release --locked first)" >&2; exit 1; }
PORT_A=7421
PORT_B=7422
WORKDIR=$(mktemp -d)
trap 'rm -rf "$WORKDIR"' EXIT

CAMPAIGN=(--ci-target 0.1 --injections 2000 --seed 42 --instructions 8000 --batch 128)

"$BIN" serve --listen "127.0.0.1:$PORT_A" --threads 2 2>"$WORKDIR/worker_a.log" &
PID_A=$!
"$BIN" serve --listen "127.0.0.1:$PORT_B" --threads 2 --die-mid-batch 1 \
  2>"$WORKDIR/worker_b.log" &
PID_B=$!
trap 'kill $PID_A $PID_B 2>/dev/null || true; rm -rf "$WORKDIR"' EXIT

wait_port "$PORT_A" "$PID_A"
wait_port "$PORT_B" "$PID_B"

echo "== two-worker campaign, worker B dies mid-batch =="
"$BIN" validate --workers "127.0.0.1:$PORT_A,127.0.0.1:$PORT_B" \
  "${CAMPAIGN[@]}" | tee "$WORKDIR/two_worker.out"
assert_alive "$PID_A" "worker A"
assert_alive "$PID_B" "worker B"

echo "== single-worker reference at the same seed =="
"$BIN" validate --workers "127.0.0.1:$PORT_A" \
  "${CAMPAIGN[@]}" | tee "$WORKDIR/one_worker.out"

# The fault must actually have fired, and the report must say so.
grep -q "injected fault" "$WORKDIR/worker_b.log" || {
  echo "error: worker B never fired its injected fault" >&2; exit 1; }
grep -q "re-dispatched" "$WORKDIR/two_worker.out" || {
  echo "error: the two-worker report records no re-dispatch" >&2; exit 1; }

# Bit-identical modulo venue metadata: strip the worker count, the
# throughput figure, and the re-dispatch note — everything statistical
# (counts, CIs, batch trajectory, verdicts, stop reasons) must match
# byte for byte.
filter() {
  sed -E 's/[0-9]+ worker\(s\)//; s/\([0-9]+ inj\/s\)//' "$1" | grep -v "re-dispatched"
}
if ! diff <(filter "$WORKDIR/two_worker.out") <(filter "$WORKDIR/one_worker.out"); then
  echo "error: campaign with a mid-batch worker death diverged from the fault-free run" >&2
  exit 1
fi
echo "report with worker death is bit-identical to the fault-free run ✓"

echo "== cache-hit smoke: identical campaign against the same worker =="
"$BIN" validate --workers "127.0.0.1:$PORT_A" "${CAMPAIGN[@]}" >/dev/null
grep -q "HAVE (cache hit)" "$WORKDIR/worker_a.log" || {
  echo "error: second identical campaign never hit the checkpoint-store cache" >&2; exit 1; }
echo "checkpoint-store cache HAVE observed on re-run ✓"

# Keep the kills in the trap: if the first reap fails, the second
# worker must still be torn down rather than outliving the job.
reap "$PID_A" "worker A"
reap "$PID_B" "worker B"
trap 'rm -rf "$WORKDIR"' EXIT
