#!/usr/bin/env bash
# Release-mode broker smoke: a real `broker` process fronting two
# authenticated `serve` workers, exercised three ways —
#
#   1. two tenants run `validate --broker` concurrently and each report
#      must be identical (modulo venue metadata: worker count and
#      throughput) to a direct `validate --workers` run at the same
#      seed;
#   2. the queued plane: `submit --detach` prints a durable id and a
#      separate `attach` retrieves the finished report;
#   3. the metrics endpoint answers /metrics with live queue/worker
#      counters and /healthz with ok.
#
# Auth is on end-to-end: drivers sign frames to the broker, the broker
# signs frames to the workers.
set -euo pipefail
. "$(dirname "$0")/lib.sh"

BIN=./target/release/avf-stressmark
[ -x "$BIN" ] || { echo "error: $BIN not built (run cargo build --release --locked first)" >&2; exit 1; }

W1_PORT=7621
W2_PORT=7622
BROKER_PORT=7620
METRICS_PORT=7629

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

# One shared key for the whole fleet, as --auth-key-file documents.
od -An -tx1 -N16 /dev/urandom | tr -d ' \n' > "$WORK/fleet.key"

# Venue metadata is the only legitimate difference between a brokered
# and a direct report: the worker count in the header and the
# throughput figure (plus any re-dispatch note).
fingerprint() {
  sed -E 's/[0-9]+ worker\(s\)//; s/\([0-9]+ inj\/s\)//' "$1" | grep -v "re-dispatched" || true
}

"$BIN" serve --listen "127.0.0.1:$W1_PORT" --threads 1 --auth-key-file "$WORK/fleet.key" &
W1_PID=$!
"$BIN" serve --listen "127.0.0.1:$W2_PORT" --threads 1 --auth-key-file "$WORK/fleet.key" &
W2_PID=$!
trap 'kill $W1_PID $W2_PID 2>/dev/null || true; rm -rf "$WORK"' EXIT
wait_port "$W1_PORT" "$W1_PID"
wait_port "$W2_PORT" "$W2_PID"

"$BIN" broker --listen "127.0.0.1:$BROKER_PORT" \
  --workers "127.0.0.1:$W1_PORT,127.0.0.1:$W2_PORT" \
  --store "$WORK/campaigns.log" \
  --auth-key-file "$WORK/fleet.key" \
  --metrics "127.0.0.1:$METRICS_PORT" &
BROKER_PID=$!
trap 'kill $BROKER_PID $W1_PID $W2_PID 2>/dev/null || true; rm -rf "$WORK"' EXIT
wait_port "$BROKER_PORT" "$BROKER_PID"

# --- 1. two concurrent tenants vs direct runs at the same seeds -------------
"$BIN" validate --broker "127.0.0.1:$BROKER_PORT" --tenant team-a \
  --auth-key-file "$WORK/fleet.key" \
  --ci-target 0.12 --injections 1500 --seed 42 --instructions 8000 \
  > "$WORK/brokered-a.txt" &
TENANT_A_PID=$!
"$BIN" validate --broker "127.0.0.1:$BROKER_PORT" --tenant team-b \
  --auth-key-file "$WORK/fleet.key" \
  --ci-target 0.12 --injections 1500 --seed 7 --instructions 8000 \
  > "$WORK/brokered-b.txt" &
TENANT_B_PID=$!
wait "$TENANT_A_PID"
wait "$TENANT_B_PID"
assert_alive "$BROKER_PID" "broker"
assert_alive "$W1_PID" "worker 1"
assert_alive "$W2_PID" "worker 2"

# Direct same-seed references through the workers (no broker).
"$BIN" validate --workers "127.0.0.1:$W1_PORT,127.0.0.1:$W2_PORT" \
  --auth-key-file "$WORK/fleet.key" \
  --ci-target 0.12 --injections 1500 --seed 42 --instructions 8000 \
  > "$WORK/direct-a.txt"
"$BIN" validate --workers "127.0.0.1:$W1_PORT,127.0.0.1:$W2_PORT" \
  --auth-key-file "$WORK/fleet.key" \
  --ci-target 0.12 --injections 1500 --seed 7 --instructions 8000 \
  > "$WORK/direct-b.txt"

for t in a b; do
  if ! diff <(fingerprint "$WORK/brokered-$t.txt") <(fingerprint "$WORK/direct-$t.txt"); then
    echo "error: tenant $t's brokered report diverged from the direct run" >&2
    exit 1
  fi
done
echo "ok: both tenants' brokered reports match their direct same-seed runs"

# --- 2. submit --detach / attach through the durable queue ------------------
ID=$("$BIN" submit --broker "127.0.0.1:$BROKER_PORT" --tenant team-a \
  --auth-key-file "$WORK/fleet.key" \
  --injections 400 --seed 9 --instructions 4000 --detach)
case "$ID" in
  ''|*[!0-9]*) echo "error: submit --detach printed \`$ID\`, not a campaign id" >&2; exit 1 ;;
esac
"$BIN" attach --broker "127.0.0.1:$BROKER_PORT" --tenant team-a \
  --auth-key-file "$WORK/fleet.key" --id "$ID" > "$WORK/attached.txt"
grep -q "400 injections" "$WORK/attached.txt" || {
  echo "error: attached report does not describe the submitted campaign:" >&2
  cat "$WORK/attached.txt" >&2
  exit 1
}
echo "ok: submit --detach printed id $ID and attach retrieved its report"

# --- 3. the metrics plane ---------------------------------------------------
curl -sf "http://127.0.0.1:$METRICS_PORT/healthz" | grep -q ok
METRICS=$(curl -sf "http://127.0.0.1:$METRICS_PORT/metrics")
echo "$METRICS"
# The two validate runs used the interactive plane (4 programs each =
# 8 mux sessions); the submit/attach pair used the queued spec plane
# (1 accepted, 1 completed).
for metric in \
  "avf_broker_up 1" \
  "avf_broker_workers 2" \
  "avf_broker_accepted_total 1" \
  "avf_broker_completed_total 1" \
  "avf_broker_mux_sessions_total 8" \
  "avf_broker_auth_rejects_total 0" \
  "avf_worker_up{worker=\"127.0.0.1:$W1_PORT\"} 1" \
  "avf_worker_up{worker=\"127.0.0.1:$W2_PORT\"} 1"; do
  if ! grep -qF "$metric" <<< "$METRICS"; then
    echo "error: /metrics is missing \`$metric\`" >&2
    exit 1
  fi
done
echo "ok: metrics endpoint reports a healthy fleet"

trap 'rm -rf "$WORK"' EXIT
reap "$BROKER_PID" "broker"
reap "$W1_PID" "worker 1"
reap "$W2_PID" "worker 2"
