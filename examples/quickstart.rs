//! Quickstart: measure the AVF/SER of a small program, then of a
//! hand-parameterized stressmark candidate, on the baseline Alpha-21264-like
//! machine.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use avf_ace::{FaultRates, Structure};
use avf_codegen::{generate, Knobs, TargetParams};
use avf_isa::{ProgramBuilder, Reg, DATA_BASE};
use avf_sim::{simulate, MachineConfig};

fn main() {
    let machine = MachineConfig::baseline();
    let rates = FaultRates::baseline();

    // 1. A tiny hand-written kernel: load, increment, store, loop.
    let r1 = Reg::of(1);
    let rb = Reg::of(2);
    let one = Reg::of(3);
    let mut b = ProgramBuilder::new("hand-written-loop");
    b.load_addr(rb, DATA_BASE);
    b.addi(one, Reg::ZERO, 1);
    let top = b.here();
    b.ldq(r1, rb, 0);
    b.addi(r1, r1, 1);
    b.stq(r1, rb, 0);
    b.bne(one, top);
    let program = b.build().expect("valid program");

    let result = simulate(&machine, &program, 200_000);
    let ser = result.report.ser(&rates);
    println!("--- {} ---", program.name());
    println!(
        "IPC {:.2}, {:.1}% dynamically dead",
        result.stats.ipc(),
        100.0 * result.report.deadness().dead_fraction()
    );
    print!("{ser}");

    // 2. A stressmark candidate built from the paper's Figure 5a knobs.
    let params = TargetParams::baseline();
    let sm = generate(&Knobs::paper_baseline(), &params);
    let result = simulate(&machine, &sm.program, 1_000_000);
    let ser = result.report.ser(&rates);
    println!("\n--- {} (paper Fig. 5a knobs) ---", sm.program.name());
    println!(
        "IPC {:.2}, ROB occupancy {:.1}/80, {:.2}% dead",
        result.stats.ipc(),
        result.stats.avg_rob_occupancy(),
        100.0 * result.report.deadness().dead_fraction()
    );
    print!("{ser}");
    println!("\nper-structure AVF:");
    for s in Structure::ALL {
        println!("  {:9} {:.3}", s.name(), result.report.avf(s));
    }
}
