//! Cross-validate the ACE-based AVF numbers with a statistical
//! fault-injection campaign: flip single bits in sampled (cycle, entry,
//! bit) points of each hardware structure, classify every trial as
//! masked / SDC / DUE against a golden run, and compare the measured
//! AVF (±95% CI) with the ACE estimate for the same run.
//!
//! ```text
//! cargo run --release --example injection_campaign
//! ```

use avf_codegen::{generate, Knobs, TargetParams};
use avf_inject::{Campaign, CampaignConfig};
use avf_sim::MachineConfig;

fn main() {
    let machine = MachineConfig::baseline();

    // The paper's hand-tuned baseline stressmark: near-worst-case AVF,
    // so injection outcomes are rich in SDC/DUE events.
    let stressmark = generate(&Knobs::paper_baseline(), &TargetParams::baseline());

    let config = CampaignConfig {
        injections: 1_000,
        seed: 42,
        ..CampaignConfig::default()
    };
    let report = Campaign::new(&machine, &stressmark.program, config).run();
    println!("{report}");

    // A proxy workload for contrast: lower occupancy, lower AVF —
    // measured adaptively: batches go to the structures with the widest
    // Wilson intervals, and the campaign stops at ±0.05 per structure
    // (or the 4000-trial cap) instead of spending a fixed budget.
    let mcf = avf_workloads::by_name("429.mcf")
        .expect("mcf proxy")
        .build();
    let config = CampaignConfig {
        injections: 4_000,
        seed: 42,
        ci_target: Some(0.05),
        ..CampaignConfig::default()
    };
    let report = Campaign::new(&machine, &mcf, config).run();
    println!("{report}");
}
