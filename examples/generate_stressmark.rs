//! Run the full automated methodology of the paper's Figure 2: a genetic
//! algorithm searches the code generator's knob space with simulated SER as
//! the fitness, producing an AVF stressmark for the baseline machine.
//!
//! ```text
//! cargo run --release --example generate_stressmark
//! ```

use avf_ace::FaultRates;
use avf_ga::GaParams;
use avf_sim::MachineConfig;
use avf_stressmark::{generate_stressmark, Fitness, KnobSettings, SearchConfig};

fn main() {
    let mut config = SearchConfig::quick(
        MachineConfig::baseline(),
        Fitness::overall(FaultRates::baseline()),
    );
    // A small search keeps this example under a minute; raise toward
    // GaParams::paper() (50 x 50) for a full-strength stressmark.
    config.ga = GaParams {
        population: 12,
        generations: 12,
        ..GaParams::quick()
    };
    config.eval_instructions = 80_000;
    config.final_instructions = 2_000_000;

    println!(
        "searching: {} individuals x {} generations, {}k-instruction evaluations",
        config.ga.population,
        config.ga.generations,
        config.eval_instructions / 1000
    );
    let outcome = generate_stressmark(&config).expect("local search cannot fail");

    println!("\nGA convergence (mean fitness per generation, as in Fig. 5b):");
    for g in &outcome.ga.history {
        let bar = "#".repeat((g.mean * 80.0).max(0.0) as usize);
        println!(
            "  gen {:>3} {:>7.4} {}{}",
            g.generation,
            g.mean,
            bar,
            if g.cataclysm { " <- cataclysm" } else { "" }
        );
    }

    println!("\nfinal knob settings (as in Fig. 5a):");
    print!("{}", KnobSettings::of(&outcome));

    let ser = outcome.result.report.ser(&FaultRates::baseline());
    println!("\nstressmark SER at the final budget:");
    print!("{ser}");
    println!(
        "dead fraction {:.4} (the generator's 100%-ACE guarantee)",
        outcome.result.report.deadness().dead_fraction()
    );
}
