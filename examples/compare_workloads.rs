//! Compare the stressmark's SER against the 33-program proxy suite
//! (SPEC CPU2006 + MiBench), reproducing the shape of the paper's
//! Figures 3 and 4: the stressmark exceeds every workload in every class,
//! exposing the suite's limited SER coverage.
//!
//! ```text
//! cargo run --release --example compare_workloads
//! ```

use avf_ace::FaultRates;
use avf_ga::GaParams;
use avf_sim::MachineConfig;
use avf_stressmark::{run_suite, stressmark_for, ExperimentConfig};

fn main() {
    let mut cfg = ExperimentConfig::standard();
    // Keep the example brisk; the bench harness uses bigger budgets.
    cfg.workload_instructions = 500_000;
    cfg.final_instructions = 1_500_000;
    cfg.eval_instructions = 80_000;
    cfg.ga = GaParams {
        population: 12,
        generations: 10,
        ..GaParams::quick()
    };

    let machine = MachineConfig::baseline();
    let rates = FaultRates::baseline();

    println!("generating stressmark...");
    let sm = stressmark_for(&cfg, machine.clone(), rates.clone());
    let sm_ser = sm.result.report.ser(&rates);

    println!("running the 33-program suite...");
    let runs = run_suite(
        &machine,
        &avf_workloads::all(),
        cfg.workload_instructions,
        cfg.threads,
    );

    println!(
        "\n{:<22} {:>8} {:>10} {:>8}",
        "program", "QS+RF", "DL1+DTLB", "L2"
    );
    let row = |name: &str, qsrf: f64, d: f64, l2: f64| {
        println!("{name:<22} {qsrf:>8.3} {d:>10.3} {l2:>8.3}");
    };
    row("Stressmark", sm_ser.qs_rf(), sm_ser.dl1_dtlb(), sm_ser.l2());
    let mut best = ("-", 0.0f64);
    for (w, r) in &runs {
        let ser = r.report.ser(&rates);
        if ser.qs_rf() > best.1 {
            best = (w.name(), ser.qs_rf());
        }
        row(w.name(), ser.qs_rf(), ser.dl1_dtlb(), ser.l2());
    }

    println!(
        "\nheadroom over the best individual program ({}): {:.2}x in the core",
        best.0,
        sm_ser.qs_rf() / best.1
    );
    println!(
        "=> a safety margin chosen from workload measurements alone would under-estimate the observable worst case (paper Section VII)"
    );
}
