//! Section VII's design-space story: when structures are protected
//! (radiation-hardened ROB/LQ/SQ, or full error detection+recovery), the
//! methodology automatically re-targets the stressmark so the *remaining*
//! worst case is still found — letting an architect quantify what a
//! mitigation actually buys at the worst case, not on average.
//!
//! ```text
//! cargo run --release --example mitigation_tradeoffs
//! ```

use avf_ace::FaultRates;
use avf_codegen::L2Mode;
use avf_ga::GaParams;
use avf_sim::MachineConfig;
use avf_stressmark::{raw_sum_core, stressmark_for, ExperimentConfig, KnobSettings};

fn main() {
    let mut cfg = ExperimentConfig::standard();
    cfg.eval_instructions = 80_000;
    cfg.final_instructions = 1_500_000;
    cfg.ga = GaParams {
        population: 12,
        generations: 12,
        ..GaParams::quick()
    };

    let machine = MachineConfig::baseline();
    let sizes = machine.structure_sizes();

    println!(
        "{:<10} {:>12} {:>12} {:>10}",
        "config", "worst (meas)", "raw sum", "saved"
    );
    let mut results = Vec::new();
    for rates in [FaultRates::baseline(), FaultRates::rhc(), FaultRates::edr()] {
        let sm = stressmark_for(&cfg, machine.clone(), rates.clone());
        let measured = sm.result.report.ser(&rates).qs_rf();
        let naive = raw_sum_core(&sizes, &rates);
        println!(
            "{:<10} {:>12.3} {:>12.3} {:>9.0}%",
            rates.name(),
            measured,
            naive,
            100.0 * (1.0 - measured / naive)
        );
        results.push((rates.name(), sm));
    }

    println!("\nhow the generator adapted (paper Figures 8c/8d):");
    for (name, sm) in &results {
        println!("-- {name} --");
        print!("{}", KnobSettings::of(sm));
    }

    let edr = &results[2].1;
    if edr.stressmark.knobs.l2_mode == L2Mode::Hit {
        println!(
            "note: under EDR the GA switched to the L2-miss-free template, as in the paper \
             (stalling no longer pays once ROB/LQ/SQ are protected)."
        );
    }
    println!(
        "\nDesigning to the measured worst case instead of the raw sum avoids \
         over-design; designing to workload maxima alone risks under-design \
         (paper Figure 1 and Section VII)."
    );
}
