//! Offline stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! Supports the subset of proptest 1.x this workspace's property tests
//! use: the [`proptest!`] macro (with both `arg in strategy` and
//! `arg: Type` parameters), `prop_assert!`/`prop_assert_eq!`/
//! `prop_assert_ne!`, [`prop_oneof!`], [`Just`], range and tuple
//! strategies, [`Strategy::prop_map`], and [`collection::vec`].
//!
//! Cases are generated from a deterministic per-test seed (derived from
//! the test name) so failures reproduce; there is **no shrinking** — the
//! failing case's inputs are reported via the panic message instead.

#![forbid(unsafe_code)]

use std::ops::Range;

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SampleUniform, SeedableRng};

/// Per-block configuration (the subset of `proptest::test_runner`'s
/// `ProptestConfig` used: the case count).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Cases to run per property.
    pub cases: u64,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u64) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Number of cases to run: the `PROPTEST_CASES` environment variable
/// overrides `config`.
#[must_use]
pub fn resolve_cases(config: &ProptestConfig) -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(config.cases)
}

/// Deterministic RNG for one test case.
#[derive(Debug, Clone)]
pub struct TestRng(SmallRng);

impl TestRng {
    /// RNG for case number `case` of the test named `name`.
    #[must_use]
    pub fn new(name: &str, case: u64) -> TestRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(SmallRng::seed_from_u64(
            h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }

    fn range<T: SampleUniform>(&mut self, r: Range<T>) -> T {
        self.0.gen_range(r)
    }

    fn bits(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A generator of random values (sampling-only subset of
/// `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        rng.range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident/$i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
}

/// One boxed alternative of a [`Union`] (object-safe sampling).
pub trait DynStrategy<T> {
    /// Draws one value.
    fn dyn_sample(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_sample(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// Uniform choice among alternatives (backs [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<Box<dyn DynStrategy<T>>>,
}

impl<T> Union<T> {
    /// Starts a union from its first alternative.
    #[must_use]
    pub fn of<S: DynStrategy<T> + 'static>(arm: S) -> Union<T> {
        Union {
            arms: vec![Box::new(arm)],
        }
    }

    /// Adds another alternative.
    #[must_use]
    pub fn or<S: DynStrategy<T> + 'static>(mut self, arm: S) -> Union<T> {
        self.arms.push(Box::new(arm));
        self
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = (rng.bits() % self.arms.len() as u64) as usize;
        self.arms[idx].dyn_sample(rng)
    }
}

/// Types with a canonical full-range strategy (`arg: Type` parameters).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_lossless)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.bits() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.bits() & 1 == 1
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec`]: an exact length or a half-open
    /// range.
    #[derive(Debug, Clone)]
    pub struct SizeRange(Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange(n..n + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            SizeRange(r)
        }
    }

    /// Strategy for `Vec`s with a length drawn from `len` and elements
    /// drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    /// `Vec` strategy (the subset of `proptest::collection::vec` used).
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.range(self.len.0.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop import, mirroring `proptest::prelude`.

    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

/// Binds one `proptest!` parameter list entry after another.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $arg:ident in $strat:expr $(, $($rest:tt)*)?) => {
        let $arg = $crate::Strategy::sample(&$strat, &mut $rng);
        $crate::__proptest_bind!($rng $(, $($rest)*)?);
    };
    ($rng:ident, $arg:ident : $ty:ty $(, $($rest:tt)*)?) => {
        let $arg = <$ty as $crate::Arbitrary>::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng $(, $($rest)*)?);
    };
}

/// Defines property tests. Each body runs [`resolve_cases`] times with
/// fresh random bindings; `#[test]` attributes written inside are
/// re-emitted, and an optional leading `#![proptest_config(..)]` sets the
/// case count for the block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_block! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_block! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Expands the test functions of one [`proptest!`] block.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_block {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            for __case in 0..$crate::resolve_cases(&$cfg) {
                let mut __rng = $crate::TestRng::new(stringify!($name), __case);
                $crate::__proptest_bind!(__rng, $($params)*);
                $body
            }
        }
    )*};
}

/// `assert!` under a name the property tests expect.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under a name the property tests expect.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under a name the property tests expect.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice among strategies yielding a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($first:expr $(, $rest:expr)* $(,)?) => {{
        let union = $crate::Union::of($first);
        $(let union = union.or($rest);)*
        union
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 5u8..9, y in -3i64..4) {
            prop_assert!((5..9).contains(&x));
            prop_assert!((-3..4).contains(&y));
        }

        #[test]
        fn arbitrary_and_mixed_params(a: u64, b in 0usize..10, c: i16) {
            let _ = (a, c);
            prop_assert!(b < 10);
        }

        #[test]
        fn vec_and_oneof_compose(
            v in crate::collection::vec(prop_oneof![Just(1u8), Just(2u8), 3u8..5], 0..20)
        ) {
            prop_assert!(v.len() < 20);
            for x in v {
                prop_assert!((1..5).contains(&x));
            }
        }

        #[test]
        fn prop_map_applies(s in (0u32..10).prop_map(|x| x * 2)) {
            prop_assert_eq!(s % 2, 0);
            prop_assert_ne!(s, 19);
        }
    }
}
