//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Implements the subset of rand 0.8's API this workspace uses:
//! [`rngs::SmallRng`] (xoshiro256++ seeded via SplitMix64),
//! [`Rng::gen_range`] over half-open integer and float ranges,
//! [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`], and
//! [`seq::SliceRandom::shuffle`]. Streams are deterministic per seed but
//! are not bit-compatible with upstream `rand`.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Low-level source of randomness (the subset of `rand_core::RngCore`
/// the shim needs).
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction (the subset of `rand_core::SeedableRng` used).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range called with empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                // Modulo reduction: negligibly biased, fine for simulation
                // seeding and GA sampling.
                let off = rng.next_u64() % span;
                ((lo as $wide).wrapping_add(off as $wide)) as $t
            }
        }
    )*};
}

impl_sample_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range called with empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
}

/// Types producible by [`Rng::gen`] (the shim's stand-in for sampling
/// from rand's `Standard` distribution).
pub trait Standard {
    /// Draws a value: floats uniform in `[0, 1)`, integers full-range.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// User-facing convenience methods (the subset of `rand::Rng` used).
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self)
    }

    /// Samples uniformly from the half-open `range`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        f64::sample_range(self, 0.0, 1.0 + f64::EPSILON) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Small fast generator: xoshiro256++ with SplitMix64 seeding.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence utilities.

    use super::{Rng, RngCore};

    /// In-place random reordering (the subset of `rand::seq::SliceRandom`
    /// used).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3i16..64);
            assert!((3..64).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.3).abs() < 0.02, "gen_bool(0.3) measured {frac}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }
}
