//! Offline stand-in for the `criterion` crate (see `vendor/README.md`).
//!
//! Implements the bench-definition surface the workspace uses —
//! [`criterion_group!`]/[`criterion_main!`], benchmark groups with
//! [`BenchmarkGroup::sample_size`] / [`BenchmarkGroup::throughput`] /
//! [`BenchmarkGroup::bench_function`], and [`Bencher::iter`] — and
//! reports mean/min wall-clock time (plus derived throughput) to stdout.
//! There is no statistical analysis engine.

#![forbid(unsafe_code)]

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Work-rate annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark context.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== bench group: {name} ==");
        BenchmarkGroup {
            _c: self,
            name,
            sample_size: 10,
            throughput: None,
        }
    }
}

/// A named group of benchmarks sharing sample-size/throughput settings.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates the per-iteration work rate.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark and prints its timing summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            warm: true,
        };
        f(&mut b); // warmup pass (discarded)
        b.warm = false;
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        let n = b.samples.len().max(1) as u32;
        let total: Duration = b.samples.iter().sum();
        let mean = total / n;
        let min = b.samples.iter().min().copied().unwrap_or_default();
        print!(
            "{}/{id}: mean {mean:?}  min {min:?}  ({n} samples)",
            self.name
        );
        if let Some(t) = self.throughput {
            let secs = mean.as_secs_f64().max(1e-12);
            match t {
                Throughput::Elements(e) => print!("  {:.0} elem/s", e as f64 / secs),
                Throughput::Bytes(bytes) => print!("  {:.0} B/s", bytes as f64 / secs),
            }
        }
        println!();
        self
    }

    /// Ends the group (matches the upstream API; prints nothing extra).
    pub fn finish(&mut self) {}
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    warm: bool,
}

impl Bencher {
    /// Times one execution of `f` (one sample per call).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        let dt = start.elapsed();
        if !self.warm {
            self.samples.push(dt);
        }
    }
}

/// Declares a function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` for a bench binary from one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_benches_run() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        let mut runs = 0u32;
        group.bench_function("counts_iterations", |b| {
            b.iter(|| {
                runs += 1;
            });
        });
        group.finish();
        // 1 warmup + 3 samples.
        assert_eq!(runs, 4);
    }
}
