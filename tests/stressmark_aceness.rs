//! Cross-crate validation of the code generator against the full
//! timing-level ACE analysis: generated stressmarks must be (essentially)
//! 100% ACE and must stress the machine the way Section IV predicts.

use avf_ace::Structure;
use avf_codegen::{dead_fraction, generate, Knobs, L2Mode, TargetParams, GENOME_LEN};
use avf_sim::{simulate, MachineConfig};

fn baseline_target() -> TargetParams {
    TargetParams::baseline()
}

#[test]
fn generated_stressmarks_are_fully_ace_functionally() {
    // Sweep a grid of genomes: the ACE guarantee must hold for *every*
    // feasible knob setting, not just the tuned one.
    let params = baseline_target();
    for variant in 0..12u64 {
        let genes: Vec<f64> = (0..GENOME_LEN)
            .map(|i| ((variant * 7 + i as u64 * 3) % 10) as f64 / 9.0)
            .collect();
        let sm = generate(&Knobs::from_genome(&genes, &params), &params);
        let frac = dead_fraction(&sm.program, 30_000);
        assert!(
            frac < 0.01,
            "variant {variant} ({}) has dead fraction {frac:.4}",
            sm.program.name()
        );
    }
}

#[test]
fn stressmark_is_ace_under_timing_simulation() {
    let params = baseline_target();
    let sm = generate(&Knobs::paper_baseline(), &params);
    let res = simulate(&MachineConfig::baseline(), &sm.program, 40_000);
    let dead = res.report.deadness().dead_fraction();
    assert!(
        dead < 0.01,
        "stressmark must be ~100% ACE, got dead fraction {dead:.4}"
    );
}

#[test]
fn miss_mode_stressmark_stalls_on_l2_misses() {
    let params = baseline_target();
    let mut k = Knobs::paper_baseline();
    k.l2_mode = L2Mode::Miss;
    let sm = generate(&k, &params);
    let res = simulate(&MachineConfig::baseline(), &sm.program, 40_000);
    assert!(
        res.stats.l2_misses > 100,
        "chase must miss the L2, got {}",
        res.stats.l2_misses
    );
    // In the miss shadow the ROB fills up (paper Section IV-A.1).
    assert!(
        res.stats.avg_rob_occupancy() > 40.0,
        "ROB occupancy {:.1} too low for an L2-miss stressmark",
        res.stats.avg_rob_occupancy()
    );
    assert!(
        res.stats.mispredicts < 20,
        "stressmark's loop branch may only miss during predictor warmup, got {}",
        res.stats.mispredicts
    );
}

#[test]
fn hit_mode_has_higher_ipc_lower_rob_occupancy() {
    let params = baseline_target();
    let mut k = Knobs::paper_baseline();
    k.l2_mode = L2Mode::Hit;
    let hit = simulate(
        &MachineConfig::baseline(),
        &generate(&k, &params).program,
        40_000,
    );
    k.l2_mode = L2Mode::Miss;
    let miss = simulate(
        &MachineConfig::baseline(),
        &generate(&k, &params).program,
        40_000,
    );
    assert!(
        hit.stats.ipc() > miss.stats.ipc(),
        "L2-hit template must run faster"
    );
}

#[test]
fn stressmark_achieves_high_queue_and_cache_avf() {
    let params = baseline_target();
    let sm = generate(&Knobs::paper_baseline(), &params);
    let res = simulate(&MachineConfig::baseline(), &sm.program, 200_000);
    let rob = res.report.avf(Structure::Rob);
    let dl1 = res.report.avf(Structure::Dl1Data);
    assert!(rob > 0.5, "ROB AVF {rob:.3} too low");
    assert!(dl1 > 0.3, "DL1 AVF {dl1:.3} too low");
}

#[test]
fn dep_on_miss_raises_iq_avf() {
    let params = baseline_target();
    let mut k = Knobs::paper_baseline();
    k.n_dep_on_miss = 0;
    let low = simulate(
        &MachineConfig::baseline(),
        &generate(&k, &params).program,
        40_000,
    );
    k.n_dep_on_miss = 20;
    let high = simulate(
        &MachineConfig::baseline(),
        &generate(&k, &params).program,
        40_000,
    );
    assert!(
        high.report.avf(Structure::Iq) > low.report.avf(Structure::Iq),
        "more miss-shadow instructions must raise IQ AVF: {:.3} vs {:.3}",
        high.report.avf(Structure::Iq),
        low.report.avf(Structure::Iq)
    );
}
