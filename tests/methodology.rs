//! End-to-end methodology tests: the claims of the paper's Sections VI/VII
//! at reduced (but meaningful) scale.

use avf_ace::FaultRates;
use avf_ga::GaParams;
use avf_sim::{simulate, MachineConfig};
use avf_stressmark::{
    instantaneous_qs_bound_general, raw_sum_core, run_suite, stressmark_for, ExperimentConfig,
    Fitness, SearchConfig,
};

fn test_config() -> ExperimentConfig {
    ExperimentConfig {
        workload_instructions: 150_000,
        eval_instructions: 40_000,
        final_instructions: 400_000,
        ga: GaParams {
            population: 8,
            generations: 6,
            ..GaParams::quick()
        },
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

#[test]
fn stressmark_exceeds_every_workload_in_the_core() {
    let cfg = test_config();
    let machine = MachineConfig::baseline();
    let rates = FaultRates::baseline();
    let sm = stressmark_for(&cfg, machine.clone(), rates.clone());
    let sm_core = sm.result.report.ser(&rates).qs_rf();

    let runs = run_suite(
        &machine,
        &avf_workloads::all(),
        cfg.workload_instructions,
        cfg.threads,
    );
    for (w, r) in &runs {
        let core = r.report.ser(&rates).qs_rf();
        assert!(
            sm_core > core,
            "stressmark core SER {:.3} must exceed {} ({:.3})",
            sm_core,
            w.name(),
            core
        );
    }
}

#[test]
fn stressmark_stays_below_theoretical_bounds() {
    let cfg = test_config();
    let machine = MachineConfig::baseline();
    let sizes = machine.structure_sizes();
    for rates in [FaultRates::baseline(), FaultRates::rhc(), FaultRates::edr()] {
        let sm = stressmark_for(&cfg, machine.clone(), rates.clone());
        let qs = sm.result.report.ser(&rates).qs();
        let bound = instantaneous_qs_bound_general(&sizes, &rates);
        assert!(
            qs <= bound + 1e-9,
            "{}: sustained QS SER {qs:.3} cannot exceed the instantaneous bound {bound:.3}",
            rates.name()
        );
        let core = sm.result.report.ser(&rates).qs_rf();
        let naive = raw_sum_core(&sizes, &rates);
        assert!(core < naive, "{}: raw sum must over-estimate", rates.name());
    }
}

#[test]
fn search_adapts_to_fault_rates() {
    // Under EDR the ROB/LQ/SQ contribute nothing, so the EDR-optimized
    // stressmark must score higher *under EDR rates* than the
    // baseline-optimized one scores under EDR rates — adaptation pays.
    let cfg = test_config();
    let machine = MachineConfig::baseline();
    let edr = FaultRates::edr();
    let sm_base = stressmark_for(&cfg, machine.clone(), FaultRates::baseline());
    let sm_edr = stressmark_for(&cfg, machine, edr.clone());
    let fitness = Fitness::overall(edr);
    let base_under_edr = fitness.score(&sm_base.result.report);
    let edr_under_edr = fitness.score(&sm_edr.result.report);
    assert!(
        edr_under_edr >= base_under_edr * 0.95,
        "EDR-targeted stressmark ({edr_under_edr:.4}) must be at least competitive with the \
         baseline-targeted one under EDR rates ({base_under_edr:.4})"
    );
}

#[test]
fn config_a_search_targets_the_larger_machine() {
    let cfg = test_config();
    let outcome = stressmark_for(&cfg, MachineConfig::config_a(), FaultRates::baseline());
    // Loop cap follows the larger ROB (1.2 x 96).
    assert!(outcome.stressmark.knobs.loop_size <= 115);
    assert!(outcome.score > 0.0);
    // The generated program must actually run on Config A.
    assert!(outcome.result.stats.committed >= cfg.final_instructions);
}

#[test]
fn workload_suite_spans_an_ser_range() {
    // "Coverage": the suite must not be degenerate — its core SERs span a
    // meaningful range (Figure 1's premise).
    let cfg = test_config();
    let machine = MachineConfig::baseline();
    let rates = FaultRates::baseline();
    let runs = run_suite(
        &machine,
        &avf_workloads::all(),
        cfg.workload_instructions,
        cfg.threads,
    );
    let cores: Vec<f64> = runs
        .iter()
        .map(|(_, r)| r.report.ser(&rates).qs_rf())
        .collect();
    let min = cores.iter().copied().fold(f64::INFINITY, f64::min);
    let max = cores.iter().copied().fold(0.0, f64::max);
    assert!(
        max > 1.5 * min,
        "suite core SER range too narrow: [{min:.3}, {max:.3}]"
    );
}

#[test]
fn deterministic_search_end_to_end() {
    let machine = MachineConfig::baseline();
    let mut config = SearchConfig::quick(machine, Fitness::overall(FaultRates::baseline()));
    config.ga = GaParams {
        population: 5,
        generations: 3,
        ..GaParams::quick()
    };
    config.eval_instructions = 8_000;
    config.final_instructions = 15_000;
    let a = avf_stressmark::generate_stressmark(&config).expect("local search cannot fail");
    let b = avf_stressmark::generate_stressmark(&config).expect("local search cannot fail");
    assert_eq!(a.ga.best_genome, b.ga.best_genome);
    assert_eq!(a.score.to_bits(), b.score.to_bits());
}

#[test]
fn fp_proxies_issue_wider_than_int_proxies() {
    // Paper Section VI: "As FP programs are able to issue more
    // instructions ... the SER of queuing structures in SPEC CPU2006 FP
    // workloads is relatively high".
    let machine = MachineConfig::baseline();
    let avg_ipc = |ws: Vec<avf_workloads::Workload>| -> f64 {
        let runs = run_suite(&machine, &ws, 100_000, 8);
        runs.iter().map(|(_, r)| r.stats.ipc()).sum::<f64>() / runs.len() as f64
    };
    let fp = avg_ipc(avf_workloads::spec_fp());
    let int = avg_ipc(avf_workloads::spec_int());
    assert!(
        fp > int,
        "fp proxies should sustain higher IPC: {fp:.2} vs {int:.2}"
    );
}

#[test]
fn mibench_proxies_have_small_cache_footprints() {
    let machine = MachineConfig::baseline();
    let runs = run_suite(&machine, &avf_workloads::mibench(), 100_000, 8);
    for (w, r) in &runs {
        let ser = r.report.ser(&FaultRates::baseline());
        assert!(
            ser.l2() < 0.4,
            "{} is an embedded kernel; its L2 SER {:.3} should be small",
            w.name(),
            ser.l2()
        );
    }
}

#[test]
fn branch_entropy_drives_mispredict_rates() {
    let machine = MachineConfig::baseline();
    let gobmk = avf_workloads::by_name("445.gobmk").unwrap().build();
    let hmmer = avf_workloads::by_name("456.hmmer").unwrap().build();
    let r_gobmk = simulate(&machine, &gobmk, 150_000);
    let r_hmmer = simulate(&machine, &hmmer, 150_000);
    assert!(
        r_gobmk.stats.mispredict_rate() > r_hmmer.stats.mispredict_rate(),
        "gobmk ({:.3}) must mispredict more than hmmer ({:.3})",
        r_gobmk.stats.mispredict_rate(),
        r_hmmer.stats.mispredict_rate()
    );
}

#[test]
fn mcf_proxy_is_memory_bound() {
    let machine = MachineConfig::baseline();
    let mcf = avf_workloads::by_name("429.mcf").unwrap().build();
    let r = simulate(&machine, &mcf, 150_000);
    assert!(
        r.stats.l2_misses > 500,
        "mcf must thrash the L2, got {}",
        r.stats.l2_misses
    );
    assert!(
        r.stats.ipc() < 0.8,
        "mcf must be stall-bound, IPC {:.2}",
        r.stats.ipc()
    );
}
